// Simulated MPI collectives: they actually move the data between the
// per-rank buffers AND (a) price the transfer with the machine model,
// (b) synchronize the participants' virtual clocks (waiting is charged to
// communication time, as in the paper's measurements), and (c) meter the
// traffic.
//
// Group-scoped calls mirror the paper's usage: the 1D code calls
// alltoallv over the world; the 2D code calls allgatherv over processor
// columns (expand), alltoallv over processor rows (fold), and a pairwise
// transpose exchange (TransposeVector).
//
// All functions take send buffers by value so payloads can be moved, not
// copied — a simulated "zero copy" that keeps big runs within memory.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "model/cost.hpp"
#include "simmpi/cluster.hpp"
#include "simmpi/process_grid.hpp"

namespace dbfs::simmpi {

/// Flat CSR-style exchange buffers for world-sized all-to-alls (the 1D
/// algorithm): `data[gi]` holds rank group[gi]'s outgoing items
/// concatenated in destination order, `counts[gi][gj]` the item count
/// bound for group[gj].
template <typename T>
struct FlatExchange {
  std::vector<std::vector<T>> data;
  std::vector<std::vector<std::int64_t>> counts;

  static FlatExchange sized(std::size_t group_size) {
    FlatExchange fe;
    fe.data.resize(group_size);
    fe.counts.assign(group_size, std::vector<std::int64_t>(group_size, 0));
    return fe;
  }
};

/// All-to-all with per-destination counts over `group`. Returns the
/// received items per rank (concatenated in source order) plus per-source
/// counts. Cost: g·αN + maxrank(bytes)·βN,a2a(g) per §5.1.
template <typename T>
FlatExchange<T> alltoallv(Cluster& cluster, std::span<const int> group,
                          FlatExchange<T> send) {
  const std::size_t g = group.size();
  FlatExchange<T> recv = FlatExchange<T>::sized(g);

  // Byte accounting. The transfer is priced on the *mean* per-rank
  // volume, exactly as §5.1's model does (each rank moves ~m/p words):
  // at the paper's per-rank volumes the max/mean spread is small, whereas
  // a scaled-down instance has hub-dominated per-level skew that would
  // overstate the bottleneck. Per-rank skew still shows up as waiting
  // time through the compute-side clocks.
  std::uint64_t total_items = 0;
  for (std::size_t i = 0; i < g; ++i) {
    for (std::size_t j = 0; j < g; ++j) {
      if (i != j) {
        // Self-sends stay in memory under MPI too; do not meter them.
        total_items += static_cast<std::uint64_t>(send.counts[i][j]);
      }
    }
  }
  const std::uint64_t bottleneck = total_items / g;

  // Move the payloads.
  for (std::size_t i = 0; i < g; ++i) {
    std::size_t offset = 0;
    for (std::size_t j = 0; j < g; ++j) {
      const auto c = static_cast<std::size_t>(send.counts[i][j]);
      recv.counts[j][i] = send.counts[i][j];
      recv.data[j].insert(recv.data[j].end(),
                          send.data[i].begin() + static_cast<std::ptrdiff_t>(offset),
                          send.data[i].begin() + static_cast<std::ptrdiff_t>(offset + c));
      offset += c;
    }
    send.data[i].clear();
    send.data[i].shrink_to_fit();
  }

  // Per-rank volume scaled by the node-sharing factor: a hybrid rank
  // owns t cores' bandwidth, while many flat ranks contend for one NIC.
  const double cost = model::cost_alltoallv(
      cluster.machine(), static_cast<int>(g),
      static_cast<std::size_t>(static_cast<double>(bottleneck * sizeof(T)) *
                               cluster.nic_factor()));
  cluster.clocks().collective(group, cost);
  cluster.traffic().record(Pattern::kAlltoallv, total_items * sizeof(T), cost,
                           static_cast<int>(g));
  return recv;
}

/// Allgather over `group`: every rank ends with the concatenation of all
/// pieces in group order. The concatenation is returned once; simulated
/// ranks read it as an immutable shared view (semantically each holds a
/// copy). Cost: g·αN + result_bytes·βN,ag(g) per §5.2.
template <typename T>
std::vector<T> allgatherv(Cluster& cluster, std::span<const int> group,
                          std::vector<std::vector<T>> pieces,
                          model::AllgatherAlgo algo =
                              model::AllgatherAlgo::kRing) {
  std::vector<T> result;
  std::size_t total = 0;
  for (const auto& piece : pieces) total += piece.size();
  result.reserve(total);
  std::uint64_t network_items = 0;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    // Each rank's own piece does not cross the network; the other g-1
    // copies of it do.
    network_items +=
        static_cast<std::uint64_t>(pieces[i].size()) * (group.size() - 1);
    result.insert(result.end(), pieces[i].begin(), pieces[i].end());
  }
  const double cost = model::cost_allgatherv(
      cluster.machine(), static_cast<int>(group.size()),
      static_cast<std::size_t>(static_cast<double>(total * sizeof(T)) *
                               cluster.nic_factor()),
      algo);
  cluster.clocks().collective(group, cost);
  cluster.traffic().record(Pattern::kAllgatherv, network_items * sizeof(T),
                           cost, static_cast<int>(group.size()));
  return result;
}

/// Allreduce of one value per group slot; returns the reduction.
template <typename T, typename Op>
T allreduce(Cluster& cluster, std::span<const int> group,
            std::span<const T> contributions, T init, Op op) {
  T acc = init;
  for (const T& v : contributions) acc = op(acc, v);
  const double cost = model::cost_allreduce(
      cluster.machine(), static_cast<int>(group.size()), sizeof(T));
  cluster.clocks().collective(group, cost);
  cluster.traffic().record(
      Pattern::kAllreduce,
      static_cast<std::uint64_t>(group.size()) * sizeof(T), cost,
      static_cast<int>(group.size()));
  return acc;
}

template <typename T>
T allreduce_sum(Cluster& cluster, std::span<const int> group,
                std::span<const T> contributions) {
  return allreduce(cluster, group, contributions, T{},
                   [](T a, T b) { return a + b; });
}

/// TransposeVector (paper §3.2): on a square grid, P(i,j) and P(j,i)
/// swap payloads pairwise. pieces[rank] -> returned[partner(rank)].
template <typename T>
std::vector<std::vector<T>> transpose_exchange(
    Cluster& cluster, const ProcessGrid& grid,
    std::vector<std::vector<T>> pieces) {
  std::vector<std::vector<T>> out(pieces.size());
  for (int rank = 0; rank < grid.ranks(); ++rank) {
    const int partner = grid.transpose_partner(rank);
    out[static_cast<std::size_t>(partner)] =
        std::move(pieces[static_cast<std::size_t>(rank)]);
    if (partner < rank) continue;  // price each pair once
    const std::size_t bytes =
        std::max(out[static_cast<std::size_t>(partner)].size(),
                 pieces[static_cast<std::size_t>(partner)].size()) *
        sizeof(T);
    if (partner == rank) continue;  // diagonal: stays local, free
    const double cost = model::cost_p2p(
        cluster.machine(),
        static_cast<std::size_t>(static_cast<double>(bytes) *
                                 cluster.nic_factor()));
    const int pair[2] = {rank, partner};
    cluster.clocks().collective(pair, cost);
    cluster.traffic().record(Pattern::kTranspose,
                             static_cast<std::uint64_t>(bytes) * 2, cost, 2);
  }
  return out;
}

/// Rooted gather: pieces move to group[root_slot]; returns concatenation
/// in group order. Any serial post-processing the root performs on the
/// gathered data should be charged as compute on the root *after* this
/// call — the other ranks then accrue the idle time at the next
/// collective, which is exactly the Fig 4 imbalance mechanism.
template <typename T>
std::vector<T> gatherv(Cluster& cluster, std::span<const int> group,
                       std::size_t root_slot,
                       std::vector<std::vector<T>> pieces) {
  std::vector<T> result;
  std::uint64_t network_items = 0;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i != root_slot) network_items += pieces[i].size();
    result.insert(result.end(), pieces[i].begin(), pieces[i].end());
  }
  const double transfer = model::cost_gatherv(
      cluster.machine(), static_cast<int>(group.size()),
      static_cast<std::size_t>(
          static_cast<double>(network_items * sizeof(T)) *
          cluster.nic_factor()));
  cluster.clocks().collective(group, transfer);
  cluster.traffic().record(Pattern::kGatherv, network_items * sizeof(T),
                           transfer, static_cast<int>(group.size()));
  return result;
}

/// Rooted broadcast of `payload` from group[root_slot] to the group.
/// Returns the payload (shared immutable view for all simulated ranks).
template <typename T>
std::vector<T> broadcast(Cluster& cluster, std::span<const int> group,
                         std::size_t root_slot, std::vector<T> payload) {
  (void)root_slot;
  const std::size_t bytes = payload.size() * sizeof(T);
  const double cost = model::cost_broadcast(
      cluster.machine(), static_cast<int>(group.size()),
      static_cast<std::size_t>(static_cast<double>(bytes) *
                               cluster.nic_factor()));
  cluster.clocks().collective(group, cost);
  cluster.traffic().record(
      Pattern::kBroadcast,
      static_cast<std::uint64_t>(bytes) * (group.size() - 1), cost,
      static_cast<int>(group.size()));
  return payload;
}

}  // namespace dbfs::simmpi
