// Simulated MPI collectives: they actually move the data between the
// per-rank buffers AND (a) price the transfer with the machine model,
// (b) synchronize the participants' virtual clocks (waiting is charged to
// communication time, as in the paper's measurements), and (c) meter the
// traffic.
//
// Group-scoped calls mirror the paper's usage: the 1D code calls
// alltoallv over the world; the 2D code calls allgatherv over processor
// columns (expand), alltoallv over processor rows (fold), and a pairwise
// transpose exchange (TransposeVector).
//
// All functions take send buffers by value so payloads can be moved, not
// copied — a simulated "zero copy" that keeps big runs within memory.
// Fault injection (simmpi/fault.hpp): every collective routes its priced
// transfer time through faulted_cost(), which scales by the group's worst
// degraded NIC and injects transient failures (full-cost re-issue after a
// capped exponential backoff, all charged as communication time). The
// data-carrying collectives additionally corrupt payloads when the plan
// says so; the checked_* wrappers detect that with order-independent
// checksums and re-issue the exchange, so callers either receive intact
// data or a structured FaultError — never silent corruption. A zero plan
// takes none of these paths.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "model/cost.hpp"
#include "obs/comm_atlas.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "simmpi/cluster.hpp"
#include "simmpi/fault.hpp"
#include "simmpi/process_grid.hpp"
#include "util/prng.hpp"

namespace dbfs::simmpi {

/// Synchronize `group` on a priced collective — exactly
/// `cluster.clocks().collective(group, cost)` — and, when observers are
/// attached (see obs/), record per-rank barrier-wait and transfer
/// sub-spans (tagged with `site` and the pattern name) plus the wait-time
/// and message-size distributions. With no observers this is a single
/// branch on top of the clock synchronization, and it never alters the
/// clocks, so observed and unobserved runs stay bit-identical.
inline void sync_collective(Cluster& cluster, std::span<const int> group,
                            double cost, const char* site, Pattern pattern,
                            std::uint64_t network_bytes) {
  // Fail-stop faults surface here, at the barrier every collective
  // implies: a dead group member means the survivors detect and revoke
  // (RankFailedError) before any data would move. Checking the full group
  // — not faulted_cost's root-only group — is what catches a dead leaf in
  // rooted collectives and transpose pairs.
  if (cluster.kills_armed()) cluster.check_fail_stop(group, site);
  obs::Tracer* tracer = cluster.tracer();
  obs::MetricsRegistry* metrics = cluster.metrics();
  if (tracer != nullptr || metrics != nullptr) {
    const model::VirtualClocks& clocks = cluster.clocks();
    const char* pattern_name = to_string(pattern);
    double start = 0.0;
    for (int r : group) start = std::max(start, clocks.now(r));
    const double end = start + cost;
    obs::LogHistogram* wait_hist =
        metrics != nullptr ? &metrics->histogram("comm.wait_seconds")
                           : nullptr;
    for (int r : group) {
      const double arrive = clocks.now(r);
      if (tracer != nullptr) {
        if (start > arrive) {
          tracer->record(r, obs::SpanKind::kWait, site, pattern_name,
                         arrive, start);
        }
        tracer->record(r, obs::SpanKind::kTransfer, site, pattern_name,
                       start, end);
      }
      if (wait_hist != nullptr) wait_hist->observe(start - arrive);
    }
    if (metrics != nullptr) {
      ++metrics->counter(std::string("comm.calls.") + pattern_name);
      metrics->counter(std::string("comm.bytes.") + pattern_name) +=
          static_cast<std::int64_t>(network_bytes);
      // Cumulative participants × transfer seconds (the TrafficMeter's
      // rank_seconds): fractional, so a gauge used additively rather than
      // an integer counter.
      metrics->gauge(std::string("comm.rank_seconds.") + pattern_name) +=
          cost * static_cast<double>(group.size());
      // Distribution of per-call sizes; named apart from the
      // comm.bytes.<Pattern> counter so the OpenMetrics export keeps one
      // family per name.
      metrics->histogram(std::string("comm.call_bytes.") + pattern_name)
          .observe(static_cast<double>(network_bytes));
      metrics->histogram("comm.transfer_seconds").observe(cost);
    }
  }
  cluster.clocks().collective(group, cost);
  // Flight-recorder hook, after the clock update so the timestamp is the
  // simulated wall clock (max_now is non-decreasing across a run even for
  // per-pair transpose exchanges, whose own end times are not).
  if (obs::FlightRecorder* flight = cluster.flight()) {
    flight
        ->append("collective", site, cluster.clocks().max_now(), -1,
                 cluster.current_level())
        .set("cost_seconds", cost)
        .set("bytes", static_cast<double>(network_bytes))
        .set("ranks", static_cast<double>(group.size()));
  }
}

/// Price one collective under the cluster's fault plan: scale `base_cost`
/// by the worst NIC degradation in `group`, then inject deterministic
/// transient failures — each failed issue costs the full scaled transfer
/// plus a capped exponential backoff before the re-issue. Returns the
/// total seconds to charge; throws FaultError once the retry budget is
/// exhausted. A disabled plan returns `base_cost` untouched.
inline double faulted_cost(Cluster& cluster, std::span<const int> group,
                           double base_cost, const char* site) {
  if (!cluster.faults_enabled()) return base_cost;
  const FaultPlan& plan = cluster.faults();
  const double cost = base_cost * cluster.fault_nic_slowdown(group);
  if (plan.collective_fail_rate <= 0.0) return cost;
  FaultCounters& counters = cluster.fault_counters();
  double total = 0.0;
  int attempt = 0;
  while (plan.collective_fails(cluster.next_fault_event())) {
    ++counters.collective_failures;
    if (attempt >= plan.max_collective_retries) {
      throw FaultError(site, "collective-failure", attempt + 1, -1,
                       cluster.current_level());
    }
    const double pause = plan.backoff_seconds(attempt);
    counters.backoff_seconds += pause;
    counters.reissue_seconds += cost;
    if (cluster.observing()) {
      // The failed issue + backoff lands inside the upcoming collective
      // window, which starts when the slowest participant arrives.
      double at = 0.0;
      for (int r : group) at = std::max(at, cluster.clocks().now(r));
      if (obs::Tracer* tr = cluster.tracer()) {
        tr->instant(group.empty() ? 0 : group.front(), "collective-failure",
                    at + total, cost + pause);
      }
      if (obs::MetricsRegistry* m = cluster.metrics()) {
        ++m->counter("fault.collective_failures");
        m->histogram("fault.backoff_seconds").observe(pause);
      }
    }
    total += cost + pause;
    ++attempt;
  }
  counters.collective_retries += attempt;
  return total + cost;
}

/// Rooted variant: broadcast and gather trees are driven by the root's
/// link, so the root's degradation scales the whole operation (a degraded
/// leaf only delays itself, which the clock synchronization already
/// charges as waiting).
inline double faulted_cost_rooted(Cluster& cluster, int root_rank,
                                  double base_cost, const char* site) {
  if (!cluster.faults_enabled()) return base_cost;
  const int root[1] = {root_rank};
  return faulted_cost(cluster, std::span<const int>(root, 1), base_cost,
                      site);
}

/// Order-independent checksum of a payload: the wrapping sum of per-item
/// hashes is invariant under any re-partitioning of the same multiset of
/// items across ranks, so senders and receivers can compare totals with
/// one allreduce. A bit-flip, drop, or duplicate each shifts the sum.
template <typename T>
std::uint64_t payload_checksum(const std::vector<T>& items) {
  static_assert(std::is_trivially_copyable_v<T>,
                "checksums hash raw item bytes");
  std::uint64_t sum = 0;
  for (const T& item : items) {
    std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a over the item bytes
    unsigned char bytes[sizeof(T)];
    std::memcpy(bytes, &item, sizeof(T));
    for (unsigned char b : bytes) {
      h = (h ^ b) * 0x100000001b3ULL;
    }
    sum += util::mix64(h);
  }
  return sum;
}

namespace detail {

/// Mangle one item in `buffer` according to `kind`, using `shape` to pick
/// the item (and bit, for flips). The caller has already decided *that*
/// corruption happens; this decides *what*.
template <typename T>
void corrupt_buffer(std::vector<T>& buffer, CorruptKind kind,
                    std::uint64_t shape) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (buffer.empty()) return;
  const std::size_t item = (shape >> 16) % buffer.size();
  switch (kind) {
    case CorruptKind::kBitFlip: {
      unsigned char bytes[sizeof(T)];
      std::memcpy(bytes, &buffer[item], sizeof(T));
      bytes[(shape >> 40) % sizeof(T)] ^=
          static_cast<unsigned char>(1u << ((shape >> 50) % 8));
      std::memcpy(&buffer[item], bytes, sizeof(T));
      break;
    }
    case CorruptKind::kDrop:
      buffer.erase(buffer.begin() + static_cast<std::ptrdiff_t>(item));
      break;
    case CorruptKind::kDuplicate:
      buffer.insert(buffer.begin() + static_cast<std::ptrdiff_t>(item),
                    buffer[item]);
      break;
    default:
      break;
  }
}

/// Maybe corrupt one item across a set of received per-rank buffers.
template <typename T>
void maybe_corrupt(Cluster& cluster, std::vector<std::vector<T>>& buffers) {
  const FaultPlan& plan = cluster.faults();
  const CorruptKind kind = plan.corruption_at(cluster.next_fault_event());
  if (kind == CorruptKind::kNone) return;
  std::vector<std::size_t> nonempty;
  for (std::size_t i = 0; i < buffers.size(); ++i) {
    if (!buffers[i].empty()) nonempty.push_back(i);
  }
  if (nonempty.empty()) return;
  const std::uint64_t shape = plan.shape_draw(cluster.next_fault_event());
  corrupt_buffer(buffers[nonempty[shape % nonempty.size()]], kind, shape);
  ++cluster.fault_counters().payload_corruptions;
}

template <typename T>
void maybe_corrupt_one(Cluster& cluster, std::vector<T>& buffer) {
  const FaultPlan& plan = cluster.faults();
  const CorruptKind kind = plan.corruption_at(cluster.next_fault_event());
  if (kind == CorruptKind::kNone || buffer.empty()) return;
  corrupt_buffer(buffer, kind, plan.shape_draw(cluster.next_fault_event()));
  ++cluster.fault_counters().payload_corruptions;
}

}  // namespace detail

/// Flat CSR-style exchange buffers for world-sized all-to-alls (the 1D
/// algorithm): `data[gi]` holds rank group[gi]'s outgoing items
/// concatenated in destination order, `counts[gi][gj]` the item count
/// bound for group[gj].
template <typename T>
struct FlatExchange {
  std::vector<std::vector<T>> data;
  std::vector<std::vector<std::int64_t>> counts;

  static FlatExchange sized(std::size_t group_size) {
    FlatExchange fe;
    fe.data.resize(group_size);
    fe.counts.assign(group_size, std::vector<std::int64_t>(group_size, 0));
    return fe;
  }
};

/// All-to-all with per-destination counts over `group`. Returns the
/// received items per rank (concatenated in source order) plus per-source
/// counts. Cost: g·αN + maxrank(bytes)·βN,a2a(g) per §5.1.
template <typename T>
FlatExchange<T> alltoallv(Cluster& cluster, std::span<const int> group,
                          FlatExchange<T> send,
                          const char* site = "alltoallv") {
  const std::size_t g = group.size();
  FlatExchange<T> recv = FlatExchange<T>::sized(g);

  // Byte accounting. The transfer is priced on the *mean* per-rank
  // volume, exactly as §5.1's model does (each rank moves ~m/p words):
  // at the paper's per-rank volumes the max/mean spread is small, whereas
  // a scaled-down instance has hub-dominated per-level skew that would
  // overstate the bottleneck. Per-rank skew still shows up as waiting
  // time through the compute-side clocks.
  std::uint64_t total_items = 0;
  for (std::size_t i = 0; i < g; ++i) {
    for (std::size_t j = 0; j < g; ++j) {
      if (i != j) {
        // Self-sends stay in memory under MPI too; do not meter them.
        total_items += static_cast<std::uint64_t>(send.counts[i][j]);
      }
    }
  }
  const std::uint64_t bottleneck = total_items / g;

  // Move the payloads.
  for (std::size_t i = 0; i < g; ++i) {
    std::size_t offset = 0;
    for (std::size_t j = 0; j < g; ++j) {
      const auto c = static_cast<std::size_t>(send.counts[i][j]);
      recv.counts[j][i] = send.counts[i][j];
      recv.data[j].insert(recv.data[j].end(),
                          send.data[i].begin() + static_cast<std::ptrdiff_t>(offset),
                          send.data[i].begin() + static_cast<std::ptrdiff_t>(offset + c));
      offset += c;
    }
    send.data[i].clear();
    send.data[i].shrink_to_fit();
  }

  // Per-rank volume scaled by the node-sharing factor: a hybrid rank
  // owns t cores' bandwidth, while many flat ranks contend for one NIC.
  const double cost = faulted_cost(
      cluster, group,
      model::cost_alltoallv(
          cluster.machine(), static_cast<int>(g),
          static_cast<std::size_t>(
              static_cast<double>(bottleneck * sizeof(T)) *
              cluster.nic_factor())),
      site);
  sync_collective(cluster, group, cost, site, Pattern::kAlltoallv,
                  total_items * sizeof(T));
  cluster.traffic().record(Pattern::kAlltoallv, total_items * sizeof(T), cost,
                           static_cast<int>(g));
  if (obs::CommAtlas* atlas = cluster.atlas()) {
    auto& sl = atlas->slice(static_cast<int>(Pattern::kAlltoallv),
                            to_string(Pattern::kAlltoallv), site,
                            cluster.current_level());
    for (std::size_t i = 0; i < g; ++i) {
      for (std::size_t j = 0; j < g; ++j) {
        const auto bytes =
            static_cast<std::uint64_t>(recv.counts[j][i]) * sizeof(T);
        if (bytes == 0) continue;
        if (i == j) {
          // Self-addressed block: unmetered, but the 1D wire codec counts
          // its encoded bytes, so the local ledger keeps the
          // wire.bytes_after reconciliation exact.
          sl.add_local(group[i], bytes);
        } else {
          sl.add(group[i], group[j], bytes);
        }
      }
    }
  }
  if (cluster.faults_enabled() && cluster.faults().payload_faults()) {
    detail::maybe_corrupt(cluster, recv.data);
  }
  return recv;
}

/// Allgather over `group`: every rank ends with the concatenation of all
/// pieces in group order. The concatenation is returned once; simulated
/// ranks read it as an immutable shared view (semantically each holds a
/// copy). Cost: g·αN + result_bytes·βN,ag(g) per §5.2.
template <typename T>
std::vector<T> allgatherv(Cluster& cluster, std::span<const int> group,
                          std::vector<std::vector<T>> pieces,
                          model::AllgatherAlgo algo =
                              model::AllgatherAlgo::kRing,
                          const char* site = "allgatherv") {
  std::vector<T> result;
  std::size_t total = 0;
  for (const auto& piece : pieces) total += piece.size();
  result.reserve(total);
  std::uint64_t network_items = 0;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    // Each rank's own piece does not cross the network; the other g-1
    // copies of it do.
    network_items +=
        static_cast<std::uint64_t>(pieces[i].size()) * (group.size() - 1);
    result.insert(result.end(), pieces[i].begin(), pieces[i].end());
  }
  const double cost = faulted_cost(
      cluster, group,
      model::cost_allgatherv(
          cluster.machine(), static_cast<int>(group.size()),
          static_cast<std::size_t>(static_cast<double>(total * sizeof(T)) *
                                   cluster.nic_factor()),
          algo),
      site);
  sync_collective(cluster, group, cost, site, Pattern::kAllgatherv,
                  network_items * sizeof(T));
  cluster.traffic().record(Pattern::kAllgatherv, network_items * sizeof(T),
                           cost, static_cast<int>(group.size()));
  if (obs::CommAtlas* atlas = cluster.atlas()) {
    auto& sl = atlas->slice(static_cast<int>(Pattern::kAllgatherv),
                            to_string(Pattern::kAllgatherv), site,
                            cluster.current_level());
    for (std::size_t i = 0; i < pieces.size(); ++i) {
      const auto bytes =
          static_cast<std::uint64_t>(pieces[i].size()) * sizeof(T);
      if (bytes == 0) continue;
      for (std::size_t k = 0; k < group.size(); ++k) {
        if (k != i) sl.add(group[i], group[k], bytes);
      }
    }
  }
  if (cluster.faults_enabled() && cluster.faults().payload_faults()) {
    detail::maybe_corrupt_one(cluster, result);
  }
  return result;
}

/// Allreduce of one value per group slot; returns the reduction.
template <typename T, typename Op>
T allreduce(Cluster& cluster, std::span<const int> group,
            std::span<const T> contributions, T init, Op op,
            const char* site = "allreduce") {
  T acc = init;
  for (const T& v : contributions) acc = op(acc, v);
  const double cost = faulted_cost(
      cluster, group,
      model::cost_allreduce(cluster.machine(),
                            static_cast<int>(group.size()), sizeof(T)),
      site);
  sync_collective(cluster, group, cost, site, Pattern::kAllreduce,
                  static_cast<std::uint64_t>(group.size()) * sizeof(T));
  cluster.traffic().record(
      Pattern::kAllreduce,
      static_cast<std::uint64_t>(group.size()) * sizeof(T), cost,
      static_cast<int>(group.size()));
  if (obs::CommAtlas* atlas = cluster.atlas()) {
    auto& sl = atlas->slice(static_cast<int>(Pattern::kAllreduce),
                            to_string(Pattern::kAllreduce), site,
                            cluster.current_level());
    // Ring attribution: each member forwards one element to its
    // neighbor, matching the meter's g·sizeof(T). A single-rank group
    // degenerates to a metered diagonal entry.
    const std::size_t g = group.size();
    for (std::size_t k = 0; k < g; ++k) {
      sl.add(group[k], group[(k + 1) % g], sizeof(T));
    }
  }
  return acc;
}

template <typename T>
T allreduce_sum(Cluster& cluster, std::span<const int> group,
                std::span<const T> contributions,
                const char* site = "allreduce") {
  return allreduce(
      cluster, group, contributions, T{}, [](T a, T b) { return a + b; },
      site);
}

/// TransposeVector (paper §3.2): on a square grid, P(i,j) and P(j,i)
/// swap payloads pairwise. pieces[rank] -> returned[partner(rank)].
template <typename T>
std::vector<std::vector<T>> transpose_exchange(
    Cluster& cluster, const ProcessGrid& grid,
    std::vector<std::vector<T>> pieces, const char* site = "transpose") {
  std::vector<std::vector<T>> out(pieces.size());
  for (int rank = 0; rank < grid.ranks(); ++rank) {
    const int partner = grid.transpose_partner(rank);
    out[static_cast<std::size_t>(partner)] =
        std::move(pieces[static_cast<std::size_t>(rank)]);
    if (partner < rank) continue;  // price each pair once
    const std::size_t bytes =
        std::max(out[static_cast<std::size_t>(partner)].size(),
                 pieces[static_cast<std::size_t>(partner)].size()) *
        sizeof(T);
    if (partner == rank) continue;  // diagonal: stays local, free
    const int pair[2] = {rank, partner};
    const double cost = faulted_cost(
        cluster, pair,
        model::cost_p2p(cluster.machine(),
                        static_cast<std::size_t>(
                            static_cast<double>(bytes) *
                            cluster.nic_factor())),
        site);
    sync_collective(cluster, pair, cost, site, Pattern::kTranspose,
                    static_cast<std::uint64_t>(bytes) * 2);
    cluster.traffic().record(Pattern::kTranspose,
                             static_cast<std::uint64_t>(bytes) * 2, cost, 2);
    if (obs::CommAtlas* atlas = cluster.atlas()) {
      auto& sl = atlas->slice(static_cast<int>(Pattern::kTranspose),
                              to_string(Pattern::kTranspose), site,
                              cluster.current_level());
      // Metered as bytes × 2 (the pair's max volume, both directions).
      sl.add(rank, partner, static_cast<std::uint64_t>(bytes));
      sl.add(partner, rank, static_cast<std::uint64_t>(bytes));
    }
  }
  return out;
}

/// Rooted gather: pieces move to group[root_slot]; returns concatenation
/// in group order. Any serial post-processing the root performs on the
/// gathered data should be charged as compute on the root *after* this
/// call — the other ranks then accrue the idle time at the next
/// collective, which is exactly the Fig 4 imbalance mechanism.
template <typename T>
std::vector<T> gatherv(Cluster& cluster, std::span<const int> group,
                       std::size_t root_slot,
                       std::vector<std::vector<T>> pieces,
                       const char* site = "gatherv") {
  if (root_slot >= group.size()) {
    throw std::out_of_range("gatherv: root_slot outside group");
  }
  std::vector<T> result;
  std::uint64_t network_items = 0;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i != root_slot) network_items += pieces[i].size();
    result.insert(result.end(), pieces[i].begin(), pieces[i].end());
  }
  // The root's inbound link carries every piece, so its degradation (not
  // the group's worst) scales the whole gather.
  const double transfer = faulted_cost_rooted(
      cluster, group[root_slot],
      model::cost_gatherv(cluster.machine(),
                          static_cast<int>(group.size()),
                          static_cast<std::size_t>(
                              static_cast<double>(network_items * sizeof(T)) *
                              cluster.nic_factor())),
      site);
  sync_collective(cluster, group, transfer, site, Pattern::kGatherv,
                  network_items * sizeof(T));
  cluster.traffic().record(Pattern::kGatherv, network_items * sizeof(T),
                           transfer, static_cast<int>(group.size()));
  if (obs::CommAtlas* atlas = cluster.atlas()) {
    auto& sl = atlas->slice(static_cast<int>(Pattern::kGatherv),
                            to_string(Pattern::kGatherv), site,
                            cluster.current_level());
    for (std::size_t i = 0; i < pieces.size(); ++i) {
      const auto bytes =
          static_cast<std::uint64_t>(pieces[i].size()) * sizeof(T);
      if (i != root_slot && bytes > 0) {
        sl.add(group[i], group[root_slot], bytes);
      }
    }
  }
  return result;
}

/// Rooted broadcast of `payload` from group[root_slot] to the group.
/// Returns the payload (shared immutable view for all simulated ranks).
/// The root identity matters: its NIC drives every stage of the broadcast
/// tree, so a degraded root slows the whole operation.
template <typename T>
std::vector<T> broadcast(Cluster& cluster, std::span<const int> group,
                         std::size_t root_slot, std::vector<T> payload,
                         const char* site = "broadcast") {
  if (root_slot >= group.size()) {
    throw std::out_of_range("broadcast: root_slot outside group");
  }
  const std::size_t bytes = payload.size() * sizeof(T);
  const double cost = faulted_cost_rooted(
      cluster, group[root_slot],
      model::cost_broadcast(cluster.machine(),
                            static_cast<int>(group.size()),
                            static_cast<std::size_t>(
                                static_cast<double>(bytes) *
                                cluster.nic_factor())),
      site);
  sync_collective(cluster, group, cost, site, Pattern::kBroadcast,
                  static_cast<std::uint64_t>(bytes) * (group.size() - 1));
  cluster.traffic().record(
      Pattern::kBroadcast,
      static_cast<std::uint64_t>(bytes) * (group.size() - 1), cost,
      static_cast<int>(group.size()));
  if (obs::CommAtlas* atlas = cluster.atlas()) {
    auto& sl = atlas->slice(static_cast<int>(Pattern::kBroadcast),
                            to_string(Pattern::kBroadcast), site,
                            cluster.current_level());
    if (bytes > 0) {
      for (std::size_t k = 0; k < group.size(); ++k) {
        if (k != root_slot) {
          sl.add(group[root_slot], group[k],
                 static_cast<std::uint64_t>(bytes));
        }
      }
    }
  }
  return payload;
}

/// Checksum-verified alltoallv: when the fault plan can corrupt payloads,
/// compare the wrapping sum of per-item hashes before and after the
/// exchange (the comparison itself is one priced allreduce — the control
/// round a real implementation would pay), and re-issue the whole
/// exchange on mismatch. Exhausting the retry budget raises FaultError:
/// corrupted data never reaches the caller. Without payload faults this
/// is exactly alltoallv.
template <typename T>
FlatExchange<T> checked_alltoallv(Cluster& cluster,
                                  std::span<const int> group,
                                  FlatExchange<T> send, const char* site) {
  if (!cluster.faults_enabled() || !cluster.faults().payload_faults()) {
    return alltoallv(cluster, group, std::move(send), site);
  }
  const FaultPlan& plan = cluster.faults();
  FaultCounters& counters = cluster.fault_counters();
  std::vector<std::uint64_t> sent(group.size(), 0);
  for (std::size_t i = 0; i < group.size(); ++i) {
    sent[i] = payload_checksum(send.data[i]);
  }
  const FlatExchange<T> backup = send;
  for (int attempt = 0; attempt <= plan.max_payload_retries; ++attempt) {
    FlatExchange<T> recv =
        alltoallv(cluster, group,
                  attempt == 0 ? std::move(send) : FlatExchange<T>(backup),
                  site);
    std::vector<std::uint64_t> delta(group.size(), 0);
    for (std::size_t i = 0; i < group.size(); ++i) {
      delta[i] = sent[i] - payload_checksum(recv.data[i]);
    }
    ++counters.checksum_checks;
    if (allreduce_sum<std::uint64_t>(cluster, group, delta, "checksum") ==
        0) {
      return recv;
    }
    ++counters.payload_retries;
    if (cluster.observing()) {
      double at = 0.0;
      for (int r : group) at = std::max(at, cluster.clocks().now(r));
      if (obs::Tracer* tr = cluster.tracer()) {
        tr->instant(group.empty() ? 0 : group.front(), "checksum-retry", at);
      }
      if (obs::MetricsRegistry* m = cluster.metrics()) {
        ++m->counter("fault.checksum_retries");
      }
    }
  }
  throw FaultError(site, "payload-corruption",
                   plan.max_payload_retries + 1, -1,
                   cluster.current_level());
}

/// Checksum-verified allgatherv (see checked_alltoallv). The expected
/// total is agreed via one priced allreduce of the per-piece checksums,
/// then compared against the gathered result.
template <typename T>
std::vector<T> checked_allgatherv(
    Cluster& cluster, std::span<const int> group,
    std::vector<std::vector<T>> pieces, const char* site,
    model::AllgatherAlgo algo = model::AllgatherAlgo::kRing) {
  if (!cluster.faults_enabled() || !cluster.faults().payload_faults()) {
    return allgatherv(cluster, group, std::move(pieces), algo, site);
  }
  const FaultPlan& plan = cluster.faults();
  FaultCounters& counters = cluster.fault_counters();
  std::vector<std::uint64_t> piece_sums(pieces.size(), 0);
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    piece_sums[i] = payload_checksum(pieces[i]);
  }
  const std::vector<std::vector<T>> backup = pieces;
  for (int attempt = 0; attempt <= plan.max_payload_retries; ++attempt) {
    std::vector<T> result = allgatherv(
        cluster, group,
        attempt == 0 ? std::move(pieces)
                     : std::vector<std::vector<T>>(backup),
        algo, site);
    ++counters.checksum_checks;
    const std::uint64_t expected =
        allreduce_sum<std::uint64_t>(cluster, group, piece_sums, "checksum");
    if (payload_checksum(result) == expected) return result;
    ++counters.payload_retries;
    if (cluster.observing()) {
      double at = 0.0;
      for (int r : group) at = std::max(at, cluster.clocks().now(r));
      if (obs::Tracer* tr = cluster.tracer()) {
        tr->instant(group.empty() ? 0 : group.front(), "checksum-retry", at);
      }
      if (obs::MetricsRegistry* m = cluster.metrics()) {
        ++m->counter("fault.checksum_retries");
      }
    }
  }
  throw FaultError(site, "payload-corruption",
                   plan.max_payload_retries + 1, -1,
                   cluster.current_level());
}

}  // namespace dbfs::simmpi
