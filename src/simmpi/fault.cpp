#include "simmpi/fault.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <set>

#include "util/json.hpp"
#include "util/prng.hpp"

namespace dbfs::simmpi {

namespace {

// Distinct stream tags so the failure, corruption, and shape draws of the
// same event index never correlate.
constexpr std::uint64_t kFailStream = 0x9e3779b97f4a7c15ULL;
constexpr std::uint64_t kCorruptStream = 0xbf58476d1ce4e5b9ULL;
constexpr std::uint64_t kShapeStream = 0x94d049bb133111ebULL;
constexpr std::uint64_t kFlipStream = 0xd6e8feb86659fd93ULL;

std::uint64_t draw_u64(std::uint64_t seed, std::uint64_t stream,
                       std::uint64_t event) noexcept {
  return util::mix64(seed ^ util::mix64(stream + event * kFailStream));
}

double unit_double(std::uint64_t h) noexcept {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

const char* to_string(CorruptKind kind) {
  switch (kind) {
    case CorruptKind::kNone:
      return "none";
    case CorruptKind::kBitFlip:
      return "bitflip";
    case CorruptKind::kDrop:
      return "drop";
    case CorruptKind::kDuplicate:
      return "dup";
    case CorruptKind::kMix:
      return "mix";
  }
  return "?";
}

CorruptKind parse_corrupt_kind(const std::string& name) {
  if (name == "bitflip") return CorruptKind::kBitFlip;
  if (name == "drop") return CorruptKind::kDrop;
  if (name == "dup" || name == "duplicate") return CorruptKind::kDuplicate;
  if (name == "mix") return CorruptKind::kMix;
  throw std::invalid_argument("unknown corruption kind: " + name);
}

const char* to_string(FlipTarget target) {
  switch (target) {
    case FlipTarget::kParents:
      return "parents";
    case FlipTarget::kLevels:
      return "levels";
    case FlipTarget::kVisited:
      return "visited";
    case FlipTarget::kDirop:
      return "dirop";
    case FlipTarget::kCheckpoint:
      return "checkpoint";
  }
  return "?";
}

FlipTarget parse_flip_target(const std::string& name) {
  if (name == "parents") return FlipTarget::kParents;
  if (name == "levels") return FlipTarget::kLevels;
  if (name == "visited") return FlipTarget::kVisited;
  if (name == "dirop") return FlipTarget::kDirop;
  if (name == "checkpoint") return FlipTarget::kCheckpoint;
  throw std::invalid_argument("unknown flip target: " + name);
}

namespace {

std::string fault_message(const std::string& site, const std::string& kind,
                          int attempts, int rank, int level) {
  std::string msg = "fault injection: unrecoverable " + kind + " at " + site +
                    " after " + std::to_string(attempts) + " attempts";
  if (rank >= 0) msg += " (rank " + std::to_string(rank) + ")";
  if (level >= 0) msg += " (level " + std::to_string(level) + ")";
  return msg;
}

std::string rank_failed_message(const std::string& site, int rank,
                                int level) {
  std::string msg = "rank failure: rank " + std::to_string(rank) +
                    " is dead, detected at collective " + site;
  if (level >= 0) msg += " (level " + std::to_string(level) + ")";
  return msg;
}

std::string audit_failed_message(const std::string& site,
                                 const std::string& check, int rank,
                                 int level, std::int64_t sample_vertex) {
  std::string msg = "silent data corruption: " + check + " failed at " + site;
  if (rank >= 0) msg += " (rank " + std::to_string(rank) + ")";
  if (level >= 0) msg += " (level " + std::to_string(level) + ")";
  if (sample_vertex >= 0) {
    msg += " (sample vertex " + std::to_string(sample_vertex) + ")";
  }
  return msg;
}

}  // namespace

FaultError::FaultError(std::string site, std::string kind, int attempts,
                       int rank, int level)
    : std::runtime_error(fault_message(site, kind, attempts, rank, level)),
      site_(std::move(site)),
      kind_(std::move(kind)),
      attempts_(attempts),
      rank_(rank),
      level_(level) {}

FaultError::FaultError(Prebuilt, const std::string& message,
                       std::string site, std::string kind, int attempts,
                       int rank, int level)
    : std::runtime_error(message),
      site_(std::move(site)),
      kind_(std::move(kind)),
      attempts_(attempts),
      rank_(rank),
      level_(level) {}

RankFailedError::RankFailedError(std::string site, int rank, int level,
                                 double virtual_time)
      // No std::move(site): the message argument also reads it, and
      // argument evaluation order is unspecified.
    : FaultError(Prebuilt{}, rank_failed_message(site, rank, level), site,
                 "rank-failure", 1, rank, level),
      virtual_time_(virtual_time) {}

AuditFailedError::AuditFailedError(std::string site, std::string check,
                                   int rank, int level,
                                   std::int64_t sample_vertex,
                                   double virtual_time)
      // No std::move(site/check): the message argument also reads them.
    : FaultError(Prebuilt{},
                 audit_failed_message(site, check, rank, level,
                                      sample_vertex),
                 site, "audit-failure", 1, rank, level),
      check_(std::move(check)),
      sample_vertex_(sample_vertex),
      virtual_time_(virtual_time) {}

bool FaultPlan::enabled() const noexcept {
  return collective_fail_rate > 0.0 || corrupt_rate > 0.0 ||
         !compute_stragglers.empty() || !nic_stragglers.empty() ||
         !rank_kills.empty() || !mem_flips.empty();
}

double FaultPlan::compute_factor(int rank) const noexcept {
  double factor = 1.0;
  for (const auto& [r, f] : compute_stragglers) {
    if (r == rank) factor *= f;
  }
  return factor;
}

double FaultPlan::nic_slowdown(int rank) const noexcept {
  double factor = 1.0;
  for (const auto& [r, f] : nic_stragglers) {
    if (r == rank) factor *= f;
  }
  return factor;
}

bool FaultPlan::collective_fails(std::uint64_t event) const noexcept {
  if (collective_fail_rate <= 0.0) return false;
  return unit_double(draw_u64(seed, kFailStream, event)) <
         collective_fail_rate;
}

CorruptKind FaultPlan::corruption_at(std::uint64_t event) const noexcept {
  if (corrupt_rate <= 0.0) return CorruptKind::kNone;
  const std::uint64_t h = draw_u64(seed, kCorruptStream, event);
  if (unit_double(h) >= corrupt_rate) return CorruptKind::kNone;
  if (corrupt_kind != CorruptKind::kMix) return corrupt_kind;
  switch (h % 3) {
    case 0:
      return CorruptKind::kBitFlip;
    case 1:
      return CorruptKind::kDrop;
    default:
      return CorruptKind::kDuplicate;
  }
}

std::uint64_t FaultPlan::shape_draw(std::uint64_t event) const noexcept {
  return draw_u64(seed, kShapeStream, event);
}

std::uint64_t FaultPlan::flip_shape(const MemFlip& flip) const noexcept {
  // Keyed by the flip's identity, not an event counter: the victim stays
  // the same however many recovery replays preceded the injection.
  const std::uint64_t key =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(flip.rank))
       << 34) ^
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(flip.at_level))
       << 3) ^
      static_cast<std::uint64_t>(flip.target);
  return draw_u64(seed, kFlipStream, key);
}

double FaultPlan::backoff_seconds(int attempt) const noexcept {
  const int shift = std::min(attempt, 52);
  const double pause =
      backoff_base_seconds * static_cast<double>(std::uint64_t{1} << shift);
  return std::min(pause, backoff_cap_seconds);
}

namespace {

std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void append_pairs(std::string& out, const char* key,
                  const std::vector<std::pair<int, double>>& pairs) {
  out += "\"";
  out += key;
  out += "\":[";
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    if (i > 0) out += ',';
    out += "[" + std::to_string(pairs[i].first) + "," +
           num(pairs[i].second) + "]";
  }
  out += "]";
}

std::vector<std::pair<int, double>> read_pairs(const util::JsonValue& doc,
                                               const std::string& key) {
  std::vector<std::pair<int, double>> pairs;
  if (!doc.has(key)) return pairs;
  for (const auto& item : doc.at(key).items) {
    pairs.emplace_back(static_cast<int>(item.items.at(0).as_int()),
                       item.items.at(1).as_number());
  }
  return pairs;
}

}  // namespace

std::string to_json(const FaultPlan& plan) {
  std::string out = "{";
  out += "\"seed\":" + std::to_string(plan.seed) + ",";
  out += "\"collective_fail_rate\":" + num(plan.collective_fail_rate) + ",";
  out += "\"max_collective_retries\":" +
         std::to_string(plan.max_collective_retries) + ",";
  out += "\"backoff_base_seconds\":" + num(plan.backoff_base_seconds) + ",";
  out += "\"backoff_cap_seconds\":" + num(plan.backoff_cap_seconds) + ",";
  out += "\"corrupt_rate\":" + num(plan.corrupt_rate) + ",";
  out += "\"corrupt_kind\":\"" + std::string(to_string(plan.corrupt_kind)) +
         "\",";
  out += "\"max_payload_retries\":" +
         std::to_string(plan.max_payload_retries) + ",";
  append_pairs(out, "compute_stragglers", plan.compute_stragglers);
  out += ",";
  append_pairs(out, "nic_stragglers", plan.nic_stragglers);
  if (!plan.rank_kills.empty()) {
    out += ",\"rank_kills\":[";
    for (std::size_t i = 0; i < plan.rank_kills.size(); ++i) {
      const RankKill& k = plan.rank_kills[i];
      if (i > 0) out += ',';
      out += "{\"rank\":" + std::to_string(k.rank);
      if (k.at_level >= 0)
        out += ",\"at_level\":" + std::to_string(k.at_level);
      if (k.at_time >= 0.0) out += ",\"at_time\":" + num(k.at_time);
      out += "}";
    }
    out += "]";
  }
  if (!plan.mem_flips.empty()) {
    out += ",\"mem_flips\":[";
    for (std::size_t i = 0; i < plan.mem_flips.size(); ++i) {
      const MemFlip& f = plan.mem_flips[i];
      if (i > 0) out += ',';
      out += "{\"rank\":" + std::to_string(f.rank);
      if (f.at_level >= 0)
        out += ",\"at_level\":" + std::to_string(f.at_level);
      out += ",\"target\":\"" + std::string(to_string(f.target)) + "\"}";
    }
    out += "]";
  }
  out += "}";
  return out;
}

namespace {

// Forward-compat guard: a plan written by a newer binary may carry keys
// this build does not understand. Silently dropping them would make the
// plan partially inert without a trace, so each unknown key warns once
// (per process) to stderr.
void warn_unknown_plan_keys(const util::JsonValue& doc) {
  static const char* const known[] = {
      "seed",           "collective_fail_rate", "max_collective_retries",
      "backoff_base_seconds", "backoff_cap_seconds", "corrupt_rate",
      "corrupt_kind",   "max_payload_retries",  "compute_stragglers",
      "nic_stragglers", "rank_kills",           "mem_flips",
  };
  static std::set<std::string> warned;
  for (const auto& [key, value] : doc.members) {
    (void)value;
    bool ok = false;
    for (const char* k : known) {
      if (key == k) {
        ok = true;
        break;
      }
    }
    if (ok || !warned.insert(key).second) continue;
    std::fprintf(stderr,
                 "warning: fault plan key \"%s\" is not understood by this "
                 "build and will be ignored\n",
                 key.c_str());
  }
}

}  // namespace

FaultPlan fault_plan_from_json(const std::string& text) {
  const util::JsonValue doc = util::parse_json(text);
  warn_unknown_plan_keys(doc);
  FaultPlan plan;
  plan.seed = static_cast<std::uint64_t>(doc.int_or("seed", 0));
  plan.collective_fail_rate = doc.number_or("collective_fail_rate", 0.0);
  plan.max_collective_retries = static_cast<int>(
      doc.int_or("max_collective_retries", plan.max_collective_retries));
  plan.backoff_base_seconds =
      doc.number_or("backoff_base_seconds", plan.backoff_base_seconds);
  plan.backoff_cap_seconds =
      doc.number_or("backoff_cap_seconds", plan.backoff_cap_seconds);
  plan.corrupt_rate = doc.number_or("corrupt_rate", 0.0);
  plan.corrupt_kind =
      parse_corrupt_kind(doc.string_or("corrupt_kind", "mix"));
  plan.max_payload_retries = static_cast<int>(
      doc.int_or("max_payload_retries", plan.max_payload_retries));
  plan.compute_stragglers = read_pairs(doc, "compute_stragglers");
  plan.nic_stragglers = read_pairs(doc, "nic_stragglers");
  // Absent in pre-kill plans: loads as an empty (inert) schedule.
  if (doc.has("rank_kills")) {
    for (const auto& item : doc.at("rank_kills").items) {
      RankKill kill;
      kill.rank = static_cast<int>(item.int_or("rank", -1));
      kill.at_level = static_cast<int>(item.int_or("at_level", -1));
      kill.at_time = item.number_or("at_time", -1.0);
      plan.rank_kills.push_back(kill);
    }
  }
  // Absent in pre-SDC plans: loads as an empty (inert) schedule.
  if (doc.has("mem_flips")) {
    for (const auto& item : doc.at("mem_flips").items) {
      MemFlip flip;
      flip.rank = static_cast<int>(item.int_or("rank", -1));
      flip.at_level = static_cast<int>(item.int_or("at_level", -1));
      flip.target = parse_flip_target(item.string_or("target", "parents"));
      plan.mem_flips.push_back(flip);
    }
  }
  return plan;
}

std::vector<RankKill> parse_kill_specs(const std::string& spec) {
  std::vector<RankKill> kills;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    const std::size_t at = item.find('@');
    if (at == std::string::npos || at == 0) {
      throw std::invalid_argument("kill spec '" + item +
                                  "': expected RANK@levelL or RANK@tSECONDS");
    }
    RankKill kill;
    char* end = nullptr;
    kill.rank = static_cast<int>(std::strtol(item.c_str(), &end, 10));
    if (end != item.c_str() + at || kill.rank < 0) {
      throw std::invalid_argument("kill spec '" + item + "': bad rank");
    }
    const std::string trigger = item.substr(at + 1);
    if (trigger.rfind("level", 0) == 0) {
      const char* digits = trigger.c_str() + 5;
      kill.at_level = static_cast<int>(std::strtol(digits, &end, 10));
      if (end == digits || *end != '\0' || kill.at_level < 0) {
        throw std::invalid_argument("kill spec '" + item + "': bad level");
      }
    } else if (trigger.rfind("t", 0) == 0) {
      const char* digits = trigger.c_str() + 1;
      kill.at_time = std::strtod(digits, &end);
      if (end == digits || *end != '\0' || kill.at_time < 0.0) {
        throw std::invalid_argument("kill spec '" + item + "': bad time");
      }
    } else {
      throw std::invalid_argument("kill spec '" + item +
                                  "': trigger must be levelL or tSECONDS");
    }
    kills.push_back(kill);
  }
  if (kills.empty()) {
    throw std::invalid_argument("empty kill spec: " + spec);
  }
  return kills;
}

std::vector<MemFlip> parse_flip_specs(const std::string& spec) {
  std::vector<MemFlip> flips;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    const std::size_t at = item.find('@');
    const std::size_t colon = item.find(':');
    if (at == std::string::npos || at == 0 || colon == std::string::npos ||
        colon < at) {
      throw std::invalid_argument("flip spec '" + item +
                                  "': expected RANK@levelL:target");
    }
    MemFlip flip;
    char* end = nullptr;
    flip.rank = static_cast<int>(std::strtol(item.c_str(), &end, 10));
    if (end != item.c_str() + at || flip.rank < 0) {
      throw std::invalid_argument("flip spec '" + item + "': bad rank");
    }
    const std::string trigger = item.substr(at + 1, colon - at - 1);
    if (trigger.rfind("level", 0) != 0) {
      throw std::invalid_argument("flip spec '" + item +
                                  "': trigger must be levelL");
    }
    const char* digits = trigger.c_str() + 5;
    flip.at_level = static_cast<int>(std::strtol(digits, &end, 10));
    if (end == digits || *end != '\0' || flip.at_level < 0) {
      throw std::invalid_argument("flip spec '" + item + "': bad level");
    }
    flip.target = parse_flip_target(item.substr(colon + 1));
    flips.push_back(flip);
  }
  if (flips.empty()) {
    throw std::invalid_argument("empty flip spec: " + spec);
  }
  return flips;
}

}  // namespace dbfs::simmpi
