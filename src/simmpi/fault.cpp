#include "simmpi/fault.hpp"

#include <algorithm>
#include <cmath>

#include "util/prng.hpp"

namespace dbfs::simmpi {

namespace {

// Distinct stream tags so the failure, corruption, and shape draws of the
// same event index never correlate.
constexpr std::uint64_t kFailStream = 0x9e3779b97f4a7c15ULL;
constexpr std::uint64_t kCorruptStream = 0xbf58476d1ce4e5b9ULL;
constexpr std::uint64_t kShapeStream = 0x94d049bb133111ebULL;

std::uint64_t draw_u64(std::uint64_t seed, std::uint64_t stream,
                       std::uint64_t event) noexcept {
  return util::mix64(seed ^ util::mix64(stream + event * kFailStream));
}

double unit_double(std::uint64_t h) noexcept {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

const char* to_string(CorruptKind kind) {
  switch (kind) {
    case CorruptKind::kNone:
      return "none";
    case CorruptKind::kBitFlip:
      return "bitflip";
    case CorruptKind::kDrop:
      return "drop";
    case CorruptKind::kDuplicate:
      return "dup";
    case CorruptKind::kMix:
      return "mix";
  }
  return "?";
}

CorruptKind parse_corrupt_kind(const std::string& name) {
  if (name == "bitflip") return CorruptKind::kBitFlip;
  if (name == "drop") return CorruptKind::kDrop;
  if (name == "dup" || name == "duplicate") return CorruptKind::kDuplicate;
  if (name == "mix") return CorruptKind::kMix;
  throw std::invalid_argument("unknown corruption kind: " + name);
}

FaultError::FaultError(std::string site, std::string kind, int attempts)
    : std::runtime_error("fault injection: unrecoverable " + kind + " at " +
                         site + " after " + std::to_string(attempts) +
                         " attempts"),
      site_(std::move(site)),
      kind_(std::move(kind)),
      attempts_(attempts) {}

bool FaultPlan::enabled() const noexcept {
  return collective_fail_rate > 0.0 || corrupt_rate > 0.0 ||
         !compute_stragglers.empty() || !nic_stragglers.empty();
}

double FaultPlan::compute_factor(int rank) const noexcept {
  double factor = 1.0;
  for (const auto& [r, f] : compute_stragglers) {
    if (r == rank) factor *= f;
  }
  return factor;
}

double FaultPlan::nic_slowdown(int rank) const noexcept {
  double factor = 1.0;
  for (const auto& [r, f] : nic_stragglers) {
    if (r == rank) factor *= f;
  }
  return factor;
}

bool FaultPlan::collective_fails(std::uint64_t event) const noexcept {
  if (collective_fail_rate <= 0.0) return false;
  return unit_double(draw_u64(seed, kFailStream, event)) <
         collective_fail_rate;
}

CorruptKind FaultPlan::corruption_at(std::uint64_t event) const noexcept {
  if (corrupt_rate <= 0.0) return CorruptKind::kNone;
  const std::uint64_t h = draw_u64(seed, kCorruptStream, event);
  if (unit_double(h) >= corrupt_rate) return CorruptKind::kNone;
  if (corrupt_kind != CorruptKind::kMix) return corrupt_kind;
  switch (h % 3) {
    case 0:
      return CorruptKind::kBitFlip;
    case 1:
      return CorruptKind::kDrop;
    default:
      return CorruptKind::kDuplicate;
  }
}

std::uint64_t FaultPlan::shape_draw(std::uint64_t event) const noexcept {
  return draw_u64(seed, kShapeStream, event);
}

double FaultPlan::backoff_seconds(int attempt) const noexcept {
  const int shift = std::min(attempt, 52);
  const double pause =
      backoff_base_seconds * static_cast<double>(std::uint64_t{1} << shift);
  return std::min(pause, backoff_cap_seconds);
}

}  // namespace dbfs::simmpi
