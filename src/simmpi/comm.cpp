// Collectives are header-only templates (comm.hpp); this translation unit
// exists so the target owns a compiled object and to host future
// non-template plumbing.
#include "simmpi/comm.hpp"
