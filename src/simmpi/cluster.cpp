#include "simmpi/cluster.hpp"

#include <stdexcept>
#include <utility>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace dbfs::simmpi {

Cluster::Cluster(int ranks, model::MachineModel machine, int threads_per_rank)
    : ranks_(ranks),
      threads_per_rank_(threads_per_rank),
      machine_(std::move(machine)),
      clocks_(ranks) {
  if (ranks < 1) throw std::invalid_argument("Cluster: ranks must be >= 1");
  if (threads_per_rank < 1) {
    throw std::invalid_argument("Cluster: threads_per_rank must be >= 1");
  }
}

void Cluster::for_each_rank(const std::function<void(int)>& phase) const {
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic, 16)
#endif
  for (int r = 0; r < ranks_; ++r) {
    phase(r);
  }
}

void Cluster::set_fault_plan(FaultPlan plan) {
  for (const auto& list : {plan.compute_stragglers, plan.nic_stragglers}) {
    for (const auto& [rank, factor] : list) {
      if (factor <= 0.0) {
        throw std::invalid_argument(
            "Cluster: straggler factors must be positive");
      }
      (void)rank;  // out-of-cluster ranks are ignored, not errors
    }
  }
  faults_ = std::move(plan);
  faults_enabled_ = faults_.enabled();
  fault_compute_factor_.clear();
  fault_nic_slowdown_.clear();
  if (faults_enabled_) {
    fault_compute_factor_.resize(static_cast<std::size_t>(ranks_));
    fault_nic_slowdown_.resize(static_cast<std::size_t>(ranks_));
    for (int r = 0; r < ranks_; ++r) {
      fault_compute_factor_[static_cast<std::size_t>(r)] =
          faults_.compute_factor(r);
      fault_nic_slowdown_[static_cast<std::size_t>(r)] =
          faults_.nic_slowdown(r);
    }
  }
  fault_events_ = 0;
  fault_counters_.reset();
}

void Cluster::reset_accounting() {
  clocks_.reset();
  traffic_.reset();
  fault_events_ = 0;
  fault_counters_.reset();
  if (tracer_ != nullptr) tracer_->clear();
  if (metrics_ != nullptr) metrics_->clear();
}

}  // namespace dbfs::simmpi
