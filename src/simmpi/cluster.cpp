#include "simmpi/cluster.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "model/cost.hpp"
#include "obs/comm_atlas.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace dbfs::simmpi {

Cluster::Cluster(int ranks, model::MachineModel machine, int threads_per_rank)
    : ranks_(ranks),
      threads_per_rank_(threads_per_rank),
      machine_(std::move(machine)),
      clocks_(ranks) {
  if (ranks < 1) throw std::invalid_argument("Cluster: ranks must be >= 1");
  if (threads_per_rank < 1) {
    throw std::invalid_argument("Cluster: threads_per_rank must be >= 1");
  }
}

void Cluster::for_each_rank(const std::function<void(int)>& phase) const {
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic, 16)
#endif
  for (int r = 0; r < ranks_; ++r) {
    phase(r);
  }
}

void Cluster::set_fault_plan(FaultPlan plan) {
  for (const auto& list : {plan.compute_stragglers, plan.nic_stragglers}) {
    for (const auto& [rank, factor] : list) {
      if (factor <= 0.0) {
        throw std::invalid_argument(
            "Cluster: straggler factors must be positive");
      }
      (void)rank;  // out-of-cluster ranks are ignored, not errors
    }
  }
  faults_ = std::move(plan);
  faults_enabled_ = faults_.enabled();
  fault_compute_factor_.clear();
  fault_nic_slowdown_.clear();
  if (faults_enabled_) {
    fault_compute_factor_.resize(static_cast<std::size_t>(ranks_));
    fault_nic_slowdown_.resize(static_cast<std::size_t>(ranks_));
    for (int r = 0; r < ranks_; ++r) {
      fault_compute_factor_[static_cast<std::size_t>(r)] =
          faults_.compute_factor(r);
      fault_nic_slowdown_[static_cast<std::size_t>(r)] =
          faults_.nic_slowdown(r);
    }
  }
  fault_events_ = 0;
  fault_counters_.reset();
  dead_.clear();
  rearm_kills();
}

void Cluster::rearm_kills() noexcept {
  kills_armed_ = !faults_.rank_kills.empty() ||
                 std::any_of(dead_.begin(), dead_.end(),
                             [](char d) { return d != 0; });
}

void Cluster::check_fail_stop(std::span<const int> group, const char* site) {
  if (!kills_armed_) return;
  int victim = -1;
  for (int r : group) {
    if (rank_dead(r)) {
      victim = r;
      break;
    }
  }
  if (victim < 0) {
    for (const RankKill& kill : faults_.rank_kills) {
      if (kill.rank < 0 || kill.rank >= ranks_) continue;
      if (!kill.due(current_level_, clocks_.now(kill.rank))) continue;
      bool in_group = false;
      for (int r : group) in_group |= (r == kill.rank);
      if (!in_group) continue;
      victim = kill.rank;
      dead_.resize(static_cast<std::size_t>(ranks_), 0);
      dead_[static_cast<std::size_t>(victim)] = 1;
      break;
    }
    if (victim < 0) return;
  }

  // The survivors discover the death together: they synchronize at the
  // barrier the victim never reaches, then burn the full retry budget.
  std::vector<int> survivors;
  survivors.reserve(group.size());
  for (int r : group) {
    if (r != victim) survivors.push_back(r);
  }
  const double detect = model::cost_failure_detection(
      machine_, faults_.max_collective_retries, faults_.backoff_base_seconds,
      faults_.backoff_cap_seconds);
  double detected_at = clocks_.now(victim);
  if (!survivors.empty()) {
    if (tracer_ != nullptr) {
      double start = 0.0;
      for (int r : survivors) start = std::max(start, clocks_.now(r));
      tracer_->instant(victim, "rank-killed", clocks_.now(victim), 0.0);
      for (int r : survivors) {
        tracer_->record(r, obs::SpanKind::kWait, "failure-detect", site,
                        clocks_.now(r), start + detect);
      }
    }
    clocks_.collective(survivors, detect);
    detected_at = clocks_.now(survivors.front());
  }
  if (metrics_ != nullptr) {
    ++metrics_->counter("fault.rank_kills");
    metrics_->histogram("fault.detect_seconds").observe(detect);
  }
  if (flight_ != nullptr) {
    flight_->append("fault", site, detected_at, victim, current_level_)
        .set("detect_seconds", detect)
        .set("survivors", static_cast<double>(survivors.size()));
  }
  throw RankFailedError(site, victim, current_level_, detected_at);
}

void Cluster::consume_kill(int rank) {
  auto& kills = faults_.rank_kills;
  kills.erase(std::remove_if(kills.begin(), kills.end(),
                             [rank](const RankKill& k) {
                               return k.rank == rank;
                             }),
              kills.end());
  faults_enabled_ = faults_.enabled();
  rearm_kills();
}

std::vector<MemFlip> Cluster::take_due_flips(int levels_completed) {
  auto& flips = faults_.mem_flips;
  std::vector<MemFlip> due;
  auto keep = flips.begin();
  for (auto it = flips.begin(); it != flips.end(); ++it) {
    if (it->due(levels_completed)) {
      due.push_back(*it);
    } else {
      *keep++ = *it;
    }
  }
  flips.erase(keep, flips.end());
  if (!due.empty()) faults_enabled_ = faults_.enabled();
  return due;
}

void Cluster::revive_rank(int rank) {
  if (!dead_.empty()) dead_[static_cast<std::size_t>(rank)] = 0;
  rearm_kills();
}

void Cluster::reset_accounting() {
  clocks_.reset();
  traffic_.reset();
  fault_events_ = 0;
  fault_counters_.reset();
  if (tracer_ != nullptr) tracer_->clear();
  if (metrics_ != nullptr) metrics_->clear();
  if (flight_ != nullptr) flight_->clear();
  if (atlas_ != nullptr) atlas_->clear();
}

}  // namespace dbfs::simmpi
