#include "simmpi/cluster.hpp"

#include <stdexcept>
#include <utility>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace dbfs::simmpi {

Cluster::Cluster(int ranks, model::MachineModel machine, int threads_per_rank)
    : ranks_(ranks),
      threads_per_rank_(threads_per_rank),
      machine_(std::move(machine)),
      clocks_(ranks) {
  if (ranks < 1) throw std::invalid_argument("Cluster: ranks must be >= 1");
  if (threads_per_rank < 1) {
    throw std::invalid_argument("Cluster: threads_per_rank must be >= 1");
  }
}

void Cluster::for_each_rank(const std::function<void(int)>& phase) const {
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic, 16)
#endif
  for (int r = 0; r < ranks_; ++r) {
    phase(r);
  }
}

void Cluster::reset_accounting() {
  clocks_.reset();
  traffic_.reset();
}

}  // namespace dbfs::simmpi
