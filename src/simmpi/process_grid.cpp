#include "simmpi/process_grid.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace dbfs::simmpi {

ProcessGrid::ProcessGrid(int pr, int pc) : pr_(pr), pc_(pc) {
  if (pr < 1 || pc < 1) {
    throw std::invalid_argument("ProcessGrid: dimensions must be positive");
  }
  rows_.resize(static_cast<std::size_t>(pr) * pc);
  cols_.resize(static_cast<std::size_t>(pr) * pc);
  for (int i = 0; i < pr; ++i) {
    for (int j = 0; j < pc; ++j) {
      rows_[static_cast<std::size_t>(i) * pc + j] = rank_of(i, j);
      cols_[static_cast<std::size_t>(j) * pr + i] = rank_of(i, j);
    }
  }
  world_.resize(static_cast<std::size_t>(pr) * pc);
  std::iota(world_.begin(), world_.end(), 0);
}

ProcessGrid ProcessGrid::closest_square(int cores, int threads_per_rank) {
  if (cores < 1 || threads_per_rank < 1) {
    throw std::invalid_argument("ProcessGrid: invalid core/thread counts");
  }
  const int ranks = std::max(1, cores / threads_per_rank);
  const int s = std::max(1, static_cast<int>(std::sqrt(
                                static_cast<double>(ranks))));
  return ProcessGrid(s, s);
}

}  // namespace dbfs::simmpi
