#include "simmpi/traffic.hpp"

#include <sstream>

namespace dbfs::simmpi {

const char* to_string(Pattern p) {
  switch (p) {
    case Pattern::kAlltoallv:
      return "Alltoallv";
    case Pattern::kAllgatherv:
      return "Allgatherv";
    case Pattern::kAllreduce:
      return "Allreduce";
    case Pattern::kBroadcast:
      return "Broadcast";
    case Pattern::kGatherv:
      return "Gatherv";
    case Pattern::kTranspose:
      return "Transpose";
    case Pattern::kPointToPoint:
      return "PointToPoint";
    case Pattern::kCount:
      break;
  }
  return "?";
}

std::uint64_t TrafficMeter::total_bytes() const noexcept {
  std::uint64_t sum = 0;
  for (const auto& t : totals_) sum += t.bytes;
  return sum;
}

double TrafficMeter::total_seconds() const noexcept {
  double sum = 0.0;
  for (const auto& t : totals_) sum += t.seconds;
  return sum;
}

void TrafficMeter::reset() { totals_.fill(PatternTotals{}); }

std::string TrafficMeter::summary() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < totals_.size(); ++i) {
    const auto& t = totals_[i];
    if (t.calls == 0) continue;
    out << to_string(static_cast<Pattern>(i)) << ": " << t.calls
        << " calls, " << t.bytes << " bytes, " << t.seconds << " s\n";
  }
  return out.str();
}

}  // namespace dbfs::simmpi
