// Automated regression attribution over a pair of BENCH_*.json records.
//
// The paper's analysis method is decomposing BFS time into computation,
// communication, and wait per level (Table 1, Fig 4); PR 4's bench_diff
// detects that a metric regressed and this pass answers *why*: align the
// two records' per-level compute/wait/transfer splits (with the
// per-site transfer breakdown the critical-path pass persists), rank the
// per-(level, phase) deltas by contribution to the slowdown, and match
// the result against the known regression signatures — a straggling
// rank, the auto codec degrading to raw blocks, checkpoint/recovery
// overhead, SDC audit cadence cost, audit-triggered rollback storms,
// α–β machine-model drift, a frontier-shape change — emitting
// a ranked, confidence-scored diagnosis in both human-readable text and
// machine JSON.
//
// Everything here is pure analysis over already-recorded data: no
// simulator state, no side effects, usable from the bench_doctor CLI,
// from bench_diff's gate path (--doctor-out), and from tests.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/bench_record.hpp"

namespace dbfs::obs {

/// One aligned per-(level, phase) delta. `phase` is "compute", "wait",
/// or a transfer site name ("1d-exchange", "2d-expand", ...; plain
/// "transfer" when the records predate the per-site split).
struct DoctorContribution {
  int level = -1;  ///< BFS level; -1 = whole-run roll-up
  std::string phase;
  double baseline_seconds = 0.0;
  double candidate_seconds = 0.0;
  double delta_seconds = 0.0;  ///< candidate - baseline (positive = slower)
  double share = 0.0;          ///< |delta| / sum of all |delta|, in [0,1]
};

/// One classified signature, confidence-scored in [0,1].
struct DoctorFinding {
  std::string cause;   ///< stable identifier, e.g. "network-beta-drift"
  double confidence = 0.0;
  std::string detail;  ///< human-readable evidence sentence
};

struct DoctorReport {
  std::string baseline_name;
  std::string candidate_name;
  double baseline_teps = 0.0;
  double candidate_teps = 0.0;
  double teps_ratio = 0.0;  ///< candidate / baseline; < 1 = regression
  double baseline_seconds = 0.0;
  double candidate_seconds = 0.0;

  /// Config fields that differ between the records (fault-plan fields are
  /// reported separately — they are an experiment input, not drift).
  std::vector<std::string> config_drift;

  std::vector<DoctorContribution> contributions;  ///< ranked by |delta|
  std::vector<DoctorFinding> findings;            ///< ranked by confidence

  /// The top-ranked cause ("" when findings is empty — never the case for
  /// diagnose(), which always emits at least "unattributed").
  const std::string& top_cause() const;
};

/// Known cause identifiers, in the order the classifiers run:
///   "wire-format-change"            config wire_format differs
///   "config-drift"                  other config fields differ
///   "checkpoint-recovery-overhead"  candidate survived rank failures
///   "rollback-storm"                SDC audits forced rollback-replays
///   "audit-overhead"                state-audit cadence costs compute
///   "straggler-rank"                busy/comp imbalance jumped; names rank
///   "network-beta-drift"            transfer up, compute flat, balance flat
///   "codec-raw-fallback"            compressing format shipping raw blocks
///   "traffic-skew"                  atlas send/recv skew jumped
///   "hotspot-rank"                  atlas names the overloaded rank
///   "frontier-shape-change"         traversal level structure changed
///   "unattributed"                  fallback when nothing matched
DoctorReport diagnose(const BenchRecord& baseline,
                      const BenchRecord& candidate);

/// Multi-line human-readable diagnosis (ranked findings + top
/// contributions), for CLI output and gate failure messages.
std::string format_doctor_report(const DoctorReport& report);

/// Machine JSON: {"doctor":{...}} with the full report.
void write_doctor_json(std::ostream& out, const DoctorReport& report);
void save_doctor_report(const std::string& path, const DoctorReport& report);

/// Conventional report filename: DOCTOR_<candidate-name>.json.
std::string doctor_report_filename(const std::string& candidate_name);

}  // namespace dbfs::obs
