#include "obs/comm_atlas.hpp"

#include <algorithm>
#include <ostream>

namespace dbfs::obs {

void CommAtlas::ensure_ranks(int ranks) {
  if (ranks <= ranks_) return;
  const int old = ranks_;
  ranks_ = ranks;
  // Re-lay-out existing buckets (rare: drivers size the atlas before any
  // traffic; shrink only goes down).
  for (auto& [key, sl] : slices_) {
    std::vector<std::uint64_t> grown(
        static_cast<std::size_t>(ranks) * static_cast<std::size_t>(ranks), 0);
    for (int s = 0; s < old; ++s) {
      for (int d = 0; d < old; ++d) {
        grown[static_cast<std::size_t>(s) * static_cast<std::size_t>(ranks) +
              static_cast<std::size_t>(d)] =
            sl.cells[static_cast<std::size_t>(s) *
                         static_cast<std::size_t>(old) +
                     static_cast<std::size_t>(d)];
      }
    }
    sl.cells = std::move(grown);
    sl.ranks = ranks;
  }
}

CommAtlas::Slice& CommAtlas::slice(int pattern, const char* pattern_name,
                                   const char* site, int level) {
  auto [it, inserted] =
      slices_.try_emplace(std::make_tuple(pattern, std::string(site), level));
  Slice& sl = it->second;
  if (inserted) {
    sl.pattern = pattern;
    sl.pattern_name = pattern_name;
    sl.site = site;
    sl.level = level;
    sl.ranks = ranks_;
    sl.cells.assign(
        static_cast<std::size_t>(ranks_) * static_cast<std::size_t>(ranks_),
        0);
  }
  return sl;
}

std::uint64_t CommAtlas::pattern_bytes(int pattern) const noexcept {
  std::uint64_t sum = 0;
  for (const auto& [key, sl] : slices_) {
    if (sl.pattern == pattern) sum += sl.metered_bytes();
  }
  return sum;
}

std::uint64_t CommAtlas::pattern_total_bytes(int pattern) const noexcept {
  std::uint64_t sum = 0;
  for (const auto& [key, sl] : slices_) {
    if (sl.pattern == pattern) sum += sl.total_bytes;
  }
  return sum;
}

std::uint64_t CommAtlas::site_total_bytes(
    const std::string& site) const noexcept {
  std::uint64_t sum = 0;
  for (const auto& [key, sl] : slices_) {
    if (site == sl.site) sum += sl.total_bytes;
  }
  return sum;
}

std::vector<std::uint64_t> CommAtlas::matrix() const {
  std::vector<std::uint64_t> grand(
      static_cast<std::size_t>(ranks_) * static_cast<std::size_t>(ranks_), 0);
  for (const auto& [key, sl] : slices_) {
    for (std::size_t i = 0; i < sl.cells.size(); ++i) grand[i] += sl.cells[i];
  }
  return grand;
}

AtlasSummary CommAtlas::summary() const {
  AtlasSummary s;
  s.ranks = ranks_;
  s.grid_rows = grid_rows_;
  s.grid_cols = grid_cols_;
  if (ranks_ <= 0) return s;
  const std::vector<std::uint64_t> grand = matrix();
  std::vector<std::uint64_t> sent(static_cast<std::size_t>(ranks_), 0);
  std::vector<std::uint64_t> received(static_cast<std::size_t>(ranks_), 0);
  for (int src = 0; src < ranks_; ++src) {
    for (int dst = 0; dst < ranks_; ++dst) {
      const std::uint64_t bytes =
          grand[static_cast<std::size_t>(src) *
                    static_cast<std::size_t>(ranks_) +
                static_cast<std::size_t>(dst)];
      s.total_bytes += bytes;
      if (src == dst) {
        s.self_bytes += bytes;
        continue;
      }
      s.network_bytes += bytes;
      sent[static_cast<std::size_t>(src)] += bytes;
      received[static_cast<std::size_t>(dst)] += bytes;
      if (bytes > s.max_pair_bytes) {
        s.max_pair_bytes = bytes;
        s.max_pair_src = src;
        s.max_pair_dst = dst;
      }
      if (pair_is_subcomm(src, dst)) s.subcomm_bytes += bytes;
    }
  }
  if (s.network_bytes > 0) {
    s.max_pair_share = static_cast<double>(s.max_pair_bytes) /
                       static_cast<double>(s.network_bytes);
    s.locality_share = static_cast<double>(s.subcomm_bytes) /
                       static_cast<double>(s.network_bytes);
    const double mean =
        static_cast<double>(s.network_bytes) / static_cast<double>(ranks_);
    std::uint64_t max_sent = 0, max_received = 0;
    for (int r = 0; r < ranks_; ++r) {
      if (sent[static_cast<std::size_t>(r)] > max_sent) {
        max_sent = sent[static_cast<std::size_t>(r)];
        s.hotspot_rank = r;
      }
      if (received[static_cast<std::size_t>(r)] > max_received) {
        max_received = received[static_cast<std::size_t>(r)];
        s.incast_rank = r;
      }
    }
    s.row_skew = static_cast<double>(max_sent) / mean;
    s.col_skew = static_cast<double>(max_received) / mean;
  }
  if (s.total_bytes > 0) {
    s.self_share = static_cast<double>(s.self_bytes) /
                   static_cast<double>(s.total_bytes);
  }
  return s;
}

AtlasLevelCut CommAtlas::level_cut(int level) const noexcept {
  AtlasLevelCut cut;
  if (ranks_ <= 0) return cut;
  std::vector<std::uint64_t> sent(static_cast<std::size_t>(ranks_), 0);
  for (const auto& [key, sl] : slices_) {
    if (sl.level != level) continue;
    cut.total_bytes += sl.total_bytes;
    for (int src = 0; src < ranks_; ++src) {
      for (int dst = 0; dst < ranks_; ++dst) {
        if (src == dst) continue;
        const std::uint64_t bytes =
            sl.cells[static_cast<std::size_t>(src) *
                         static_cast<std::size_t>(ranks_) +
                     static_cast<std::size_t>(dst)];
        if (bytes == 0) continue;
        cut.network_bytes += bytes;
        sent[static_cast<std::size_t>(src)] += bytes;
        if (pair_is_subcomm(src, dst)) cut.subcomm_bytes += bytes;
      }
    }
  }
  std::uint64_t max_sent = 0;
  for (int r = 0; r < ranks_; ++r) {
    if (sent[static_cast<std::size_t>(r)] > max_sent) {
      max_sent = sent[static_cast<std::size_t>(r)];
      cut.hotspot_rank = r;
    }
  }
  return cut;
}

namespace {

void write_escaped_atlas(std::ostream& out, const char* text) {
  out << '"';
  for (const char* p = text; *p != '\0'; ++p) {
    const char c = *p;
    if (c == '"' || c == '\\') {
      out << '\\' << c;
    } else {
      out << c;
    }
  }
  out << '"';
}

}  // namespace

void CommAtlas::write_json(std::ostream& out) const {
  const AtlasSummary s = summary();
  out << "{\"atlas\":{";
  out << "\"ranks\":" << ranks_ << ",\"grid\":{\"rows\":" << grid_rows_
      << ",\"cols\":" << grid_cols_ << "},";
  out << "\"summary\":{";
  out << "\"total_bytes\":" << s.total_bytes;
  out << ",\"self_bytes\":" << s.self_bytes;
  out << ",\"network_bytes\":" << s.network_bytes;
  out << ",\"max_pair_bytes\":" << s.max_pair_bytes;
  out << ",\"max_pair_src\":" << s.max_pair_src;
  out << ",\"max_pair_dst\":" << s.max_pair_dst;
  out << ",\"max_pair_share\":" << s.max_pair_share;
  out << ",\"row_skew\":" << s.row_skew;
  out << ",\"col_skew\":" << s.col_skew;
  out << ",\"hotspot_rank\":" << s.hotspot_rank;
  out << ",\"incast_rank\":" << s.incast_rank;
  out << ",\"subcomm_bytes\":" << s.subcomm_bytes;
  out << ",\"locality_share\":" << s.locality_share;
  out << ",\"self_share\":" << s.self_share;
  out << "},";

  // Per-pattern totals, ordered by pattern id (the embedded totals
  // trace_lint reconciles against the matrix sum).
  out << "\"patterns\":[";
  std::vector<int> patterns;
  for (const auto& [key, sl] : slices_) {
    if (std::find(patterns.begin(), patterns.end(), sl.pattern) ==
        patterns.end()) {
      patterns.push_back(sl.pattern);
    }
  }
  std::sort(patterns.begin(), patterns.end());
  bool first = true;
  for (int p : patterns) {
    const char* name = "";
    for (const auto& [key, sl] : slices_) {
      if (sl.pattern == p) {
        name = sl.pattern_name;
        break;
      }
    }
    if (!first) out << ',';
    first = false;
    out << "{\"pattern\":";
    write_escaped_atlas(out, name);
    out << ",\"bytes\":" << pattern_bytes(p)
        << ",\"local_bytes\":" << (pattern_total_bytes(p) - pattern_bytes(p))
        << "}";
  }
  out << "],";

  out << "\"sites\":[";
  std::vector<std::string> sites;
  for (const auto& [key, sl] : slices_) {
    if (std::find(sites.begin(), sites.end(), sl.site) == sites.end()) {
      sites.emplace_back(sl.site);
    }
  }
  std::sort(sites.begin(), sites.end());
  first = true;
  for (const std::string& site : sites) {
    if (!first) out << ',';
    first = false;
    out << "{\"site\":";
    write_escaped_atlas(out, site.c_str());
    out << ",\"bytes\":" << site_total_bytes(site) << "}";
  }
  out << "],";

  out << "\"levels\":[";
  std::vector<int> levels;
  for (const auto& [key, sl] : slices_) {
    if (std::find(levels.begin(), levels.end(), sl.level) == levels.end()) {
      levels.push_back(sl.level);
    }
  }
  std::sort(levels.begin(), levels.end());
  first = true;
  for (int level : levels) {
    const AtlasLevelCut cut = level_cut(level);
    if (!first) out << ',';
    first = false;
    out << "{\"level\":" << level << ",\"bytes\":" << cut.total_bytes
        << ",\"network_bytes\":" << cut.network_bytes
        << ",\"subcomm_bytes\":" << cut.subcomm_bytes
        << ",\"hotspot_rank\":" << cut.hotspot_rank << "}";
  }
  out << "],";

  out << "\"matrix\":[";
  const std::vector<std::uint64_t> grand = matrix();
  for (int src = 0; src < ranks_; ++src) {
    if (src > 0) out << ',';
    out << '[';
    for (int dst = 0; dst < ranks_; ++dst) {
      if (dst > 0) out << ',';
      out << grand[static_cast<std::size_t>(src) *
                       static_cast<std::size_t>(ranks_) +
                   static_cast<std::size_t>(dst)];
    }
    out << ']';
  }
  out << "]}}";
  out << '\n';
}

}  // namespace dbfs::obs
