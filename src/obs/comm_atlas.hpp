// Per-rank-pair communication atlas: who talks to whom, in bytes.
//
// Every aggregate the repo reports today (TrafficMeter pattern totals,
// comm.* counters) collapses the (src, dst) structure of the traffic —
// yet the paper's §6 argument is exactly about that structure: 1D's
// all-to-all spans all p ranks while 2D confines the heavy fold/expand
// exchanges to √p-sized row/column subcommunicators. The atlas records
// one p×p byte matrix per (pattern, site, level) bucket, fed by the
// same call sites that feed the TrafficMeter, and derives the skew
// analytics that make the √p claim measurable: row/column volume skew,
// max-pair share, incast/hotspot ranks, and the subcommunicator-locality
// split (fraction of off-diagonal bytes confined to a proper grid row or
// column group).
//
// Like the Tracer and the flight recorder, the atlas is passive: the
// simulator never reads it back, recording happens strictly after the
// clock updates and fault draws, and a run is byte-identical in its
// report JSON whether or not an atlas is attached. Recording mirrors the
// TrafficMeter exactly — sites the meter skips (the unpriced
// recover-restore transfer) are skipped here too, so per-pattern pair
// sums reconcile with the meter's totals even through shrink recovery
// (the driver carries the atlas across the rebuilt cluster the same way
// it carries the meter).
//
// Bytes land in two ledgers per bucket: add() for network bytes the
// meter counts (off-diagonal pairs, plus the degenerate single-rank
// allreduce's diagonal), and add_local() for traffic that stays in
// memory under MPI too (a rank's self-addressed alltoallv block). The
// wire-level reconciliation 'atlas "1d-exchange" sum == wire.bytes_after'
// needs the local ledger because the 1D codec counts encoded self blocks.
//
// This header is obs-pure (no simmpi dependency): callers pass the
// pattern as an integer id plus a static name string, so the obs library
// keeps linking below simmpi.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <tuple>
#include <vector>

namespace dbfs::obs {

/// Grand-total analytics over every bucket, computed on demand.
struct AtlasSummary {
  int ranks = 0;
  int grid_rows = 0;
  int grid_cols = 0;
  std::uint64_t total_bytes = 0;    ///< every matrix cell, diagonal included
  std::uint64_t self_bytes = 0;     ///< diagonal cells (intra-rank traffic)
  std::uint64_t network_bytes = 0;  ///< off-diagonal cells
  std::uint64_t max_pair_bytes = 0;
  int max_pair_src = -1;
  int max_pair_dst = -1;
  double max_pair_share = 0.0;  ///< max pair / network bytes
  double row_skew = 1.0;        ///< max sender volume / mean sender volume
  double col_skew = 1.0;        ///< max receiver volume / mean receiver volume
  int hotspot_rank = -1;        ///< rank sending the most off-diagonal bytes
  int incast_rank = -1;         ///< rank receiving the most off-diagonal bytes
  /// Off-diagonal bytes whose (src, dst) share a grid row or column group
  /// that is a *proper* subset of the world — 2D expand/fold land here,
  /// 1D all-to-all (grid 1×p: the only row group IS the world) never does.
  std::uint64_t subcomm_bytes = 0;
  double locality_share = 0.0;  ///< subcomm / network bytes
  double self_share = 0.0;      ///< self / total bytes
};

/// Per-level cut for flight-recorder events.
struct AtlasLevelCut {
  std::uint64_t total_bytes = 0;
  std::uint64_t network_bytes = 0;
  std::uint64_t subcomm_bytes = 0;
  int hotspot_rank = -1;
};

class CommAtlas {
 public:
  /// One (pattern, site, level) bucket. Cells are row-major
  /// (src * ranks + dst) byte totals.
  struct Slice {
    int pattern = 0;
    const char* pattern_name = "";
    const char* site = "";
    int level = -1;
    int ranks = 0;
    std::vector<std::uint64_t> cells;
    std::uint64_t total_bytes = 0;  ///< sum of all cells
    std::uint64_t local_bytes = 0;  ///< add_local() bytes (unmetered)

    /// Network bytes the TrafficMeter counted for this bucket.
    std::uint64_t metered_bytes() const noexcept {
      return total_bytes - local_bytes;
    }

    void add(int src, int dst, std::uint64_t bytes) noexcept {
      cells[static_cast<std::size_t>(src) * static_cast<std::size_t>(ranks) +
            static_cast<std::size_t>(dst)] += bytes;
      total_bytes += bytes;
    }

    /// Intra-rank traffic the meter does not count (self-addressed
    /// alltoallv blocks): lands on the diagonal and in the local ledger.
    void add_local(int rank, std::uint64_t bytes) noexcept {
      add(rank, rank, bytes);
      local_bytes += bytes;
    }
  };

  /// Matrix dimension; must cover every rank id recorded. Grows only —
  /// shrink recovery keeps the original size so pre-shrink pairs stay
  /// addressable (existing buckets are re-laid-out on growth).
  void ensure_ranks(int ranks);
  int ranks() const noexcept { return ranks_; }

  /// Logical grid for the locality split. 1D drivers install (1, p),
  /// the 2D driver its pr×pc grid (re-installed after a shrink re-fold;
  /// pre-shrink pairs are then classified under the final grid).
  void set_grid(int rows, int cols) noexcept {
    grid_rows_ = rows;
    grid_cols_ = cols;
  }
  int grid_rows() const noexcept { return grid_rows_; }
  int grid_cols() const noexcept { return grid_cols_; }

  /// Fetch-or-create the bucket for (pattern, site, level). The returned
  /// reference is stable until clear(); `pattern_name`/`site` must be
  /// static strings (same contract as Tracer span names).
  Slice& slice(int pattern, const char* pattern_name, const char* site,
               int level);

  const std::map<std::tuple<int, std::string, int>, Slice>& slices()
      const noexcept {
    return slices_;
  }
  bool empty() const noexcept { return slices_.empty(); }

  /// Drop every bucket but keep ranks/grid (Cluster::reset_accounting
  /// calls this so each run's atlas describes that run alone).
  void clear() noexcept { slices_.clear(); }

  /// Network (metered) bytes recorded for one pattern id, summed over
  /// buckets — the value that must equal the TrafficMeter's per-pattern
  /// bytes total.
  std::uint64_t pattern_bytes(int pattern) const noexcept;
  /// All bytes (including the local ledger) for one pattern id.
  std::uint64_t pattern_total_bytes(int pattern) const noexcept;
  /// All bytes (including the local ledger) recorded under one site.
  std::uint64_t site_total_bytes(const std::string& site) const noexcept;

  /// Dense grand-total matrix (ranks × ranks, row-major), all buckets.
  std::vector<std::uint64_t> matrix() const;

  AtlasSummary summary() const;
  AtlasLevelCut level_cut(int level) const noexcept;

  /// True when (src, dst) share a grid row or column group that is a
  /// proper subset of the world, under the installed grid.
  bool pair_is_subcomm(int src, int dst) const noexcept {
    if (grid_rows_ <= 0 || grid_cols_ <= 0) return false;
    const bool same_row = src / grid_cols_ == dst / grid_cols_;
    const bool same_col = src % grid_cols_ == dst % grid_cols_;
    return (same_row && grid_cols_ < ranks_) ||
           (same_col && grid_rows_ < ranks_);
  }

  /// Serialize as one JSON object under a top-level "atlas" key:
  ///   {"atlas":{"ranks":...,"grid":{"rows":..,"cols":..},
  ///             "summary":{...AtlasSummary fields...},
  ///             "patterns":[{"pattern":..,"bytes":..,"local_bytes":..}],
  ///             "sites":[{"site":..,"bytes":..}],
  ///             "levels":[{"level":..,"bytes":..,"network_bytes":..,
  ///                        "subcomm_bytes":..,"hotspot_rank":..}],
  ///             "matrix":[[...],...]}}
  /// trace_lint recognizes the top-level "atlas" key and validates shape
  /// and pair-sum consistency.
  void write_json(std::ostream& out) const;

 private:
  int ranks_ = 0;
  int grid_rows_ = 0;
  int grid_cols_ = 0;
  std::map<std::tuple<int, std::string, int>, Slice> slices_;
};

}  // namespace dbfs::obs
