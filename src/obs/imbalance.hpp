// Per-rank, per-level load-imbalance profiler over a virtual-time trace.
//
// Reconstructs the data behind the paper's Figure 4 — "MPI time per rank"
// under the diagonal-only (1D) vector distribution vs the 2D one — as a
// queryable structure instead of a one-off printed heatmap: for every BFS
// level, how long each rank idled at collectives (the heatmap cell), how
// long it was busy (compute + priced transfer), which rank the level
// waited on, and how skewed the busy time was. The whole-run roll-ups
// (wait fraction, busy imbalance, straggler set) are what BenchRecord
// persists into BENCH_*.json so the 1D-vs-2D story is diffable across
// PRs.
//
// Derived purely from Tracer spans (obs/trace.hpp); levels are the spans'
// `level` tags, and spans recorded outside a level (tag -1, e.g. setup)
// are ignored.
#pragma once

#include <string>
#include <vector>

namespace dbfs::obs {

class Tracer;

struct ImbalanceProfile {
  int ranks = 0;
  /// Ascending distinct BFS levels seen in the trace; row i of the
  /// matrices below describes level_ids[i].
  std::vector<int> level_ids;

  /// Idle (barrier-wait) seconds, [level][rank] — the Fig 4 heatmap.
  std::vector<std::vector<double>> wait_seconds;
  /// Busy (compute + transfer) seconds, [level][rank].
  std::vector<std::vector<double>> busy_seconds;

  /// Whole-run per-rank totals (sums of the rows above).
  std::vector<double> rank_wait_total;
  std::vector<double> rank_busy_total;

  /// Per-level max/mean busy-time ratio (util::imbalance convention:
  /// 1.0 = perfectly balanced).
  std::vector<double> level_busy_imbalance;
  /// Per level, the rank everyone else waited on (max busy time).
  std::vector<int> straggler_rank;

  /// Whole-run roll-ups.
  double busy_imbalance = 1.0;  ///< max/mean over rank_busy_total
  double wait_imbalance = 1.0;  ///< max/mean over rank_wait_total
  /// Fraction of all per-rank seconds spent idling at collectives.
  double wait_fraction = 0.0;
  /// Distinct straggler ranks over the run, most-often-straggling first.
  std::vector<int> straggler_ranks;
};

/// Run the pass. `ranks` bounds the matrix columns; the tracer's own rank
/// table is used when it is larger.
ImbalanceProfile profile_imbalance(const Tracer& tracer, int ranks);

/// Render one matrix as a Fig 4-style percent-of-max heatmap (one row per
/// level, one column per rank), matching the paper's normalization.
std::string format_imbalance_heatmap(
    const std::vector<std::vector<double>>& matrix);

}  // namespace dbfs::obs
