#include "obs/trace.hpp"

#include <ostream>

namespace dbfs::obs {

const char* to_string(SpanKind kind) {
  switch (kind) {
    case SpanKind::kCompute:
      return "compute";
    case SpanKind::kWait:
      return "wait";
    case SpanKind::kTransfer:
      return "transfer";
  }
  return "?";
}

void Tracer::ensure_ranks(int ranks) {
  if (ranks > 0 && static_cast<std::size_t>(ranks) > per_rank_.size()) {
    per_rank_.resize(static_cast<std::size_t>(ranks));
  }
}

std::size_t Tracer::total_spans() const noexcept {
  std::size_t total = 0;
  for (const auto& spans : per_rank_) total += spans.size();
  return total;
}

void Tracer::clear() {
  for (auto& spans : per_rank_) spans.clear();
  instants_.clear();
  level_ = -1;
}

namespace {

constexpr double kMicros = 1e6;  // virtual seconds -> trace microseconds

void write_span_event(std::ostream& out, const Span& s, int rank) {
  out << "{\"name\":\"" << s.name << "\",\"cat\":\"" << to_string(s.kind)
      << "\",\"ph\":\"X\",\"ts\":" << s.begin * kMicros
      << ",\"dur\":" << (s.end - s.begin) * kMicros
      << ",\"pid\":0,\"tid\":" << rank << ",\"args\":{\"level\":" << s.level;
  if (s.pattern != nullptr && s.pattern[0] != '\0') {
    out << ",\"pattern\":\"" << s.pattern << "\"";
  }
  out << "}}";
}

void write_instant_event(std::ostream& out, const Instant& e) {
  out << "{\"name\":\"" << e.name
      << "\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"t\",\"ts\":"
      << e.at * kMicros << ",\"pid\":0,\"tid\":" << e.rank
      << ",\"args\":{\"level\":" << e.level << ",\"seconds\":" << e.seconds
      << "}}";
}

}  // namespace

void Tracer::write_chrome_json(std::ostream& out) const {
  out << "{\"traceEvents\":[";
  bool first = true;
  for (int rank = 0; rank < ranks(); ++rank) {
    // Thread-name metadata rows make Perfetto label each track "rank N".
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" << rank
        << ",\"args\":{\"name\":\"rank " << rank << "\"}}";
    for (const Span& s : per_rank_[static_cast<std::size_t>(rank)]) {
      out << ",";
      write_span_event(out, s, rank);
    }
  }
  for (const Instant& e : instants_) {
    if (!first) out << ",";
    first = false;
    write_instant_event(out, e);
  }
  out << "],\"displayTimeUnit\":\"ms\"}";
}

}  // namespace dbfs::obs
