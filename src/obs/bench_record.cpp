#include "obs/bench_record.hpp"

#include <cmath>
#include <fstream>
#include <limits>
#include <ostream>
#include <sstream>

#include "obs/comm_atlas.hpp"
#include "obs/critical_path.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/json.hpp"

namespace dbfs::obs {

namespace {

void write_escaped(std::ostream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

void write_summary(std::ostream& out, const util::Summary& s) {
  out << "{\"count\":" << s.count << ",\"min\":" << s.min
      << ",\"max\":" << s.max << ",\"mean\":" << s.mean
      << ",\"harmonic_mean\":" << s.harmonic_mean
      << ",\"median\":" << s.median << ",\"p25\":" << s.p25
      << ",\"p75\":" << s.p75 << ",\"p95\":" << s.p95
      << ",\"p99\":" << s.p99 << ",\"p999\":" << s.p999
      << ",\"stddev\":" << s.stddev << "}";
}

util::Summary parse_summary(const util::JsonValue& v) {
  util::Summary s;
  s.count = static_cast<std::size_t>(v.int_or("count", 0));
  s.min = v.number_or("min", 0.0);
  s.max = v.number_or("max", 0.0);
  s.mean = v.number_or("mean", 0.0);
  s.harmonic_mean = v.number_or("harmonic_mean", 0.0);
  s.median = v.number_or("median", 0.0);
  s.p25 = v.number_or("p25", 0.0);
  s.p75 = v.number_or("p75", 0.0);
  s.p95 = v.number_or("p95", 0.0);
  s.p99 = v.number_or("p99", 0.0);
  // Schema-additive: absent in pre-p999 baselines, defaulting to 0.
  s.p999 = v.number_or("p999", 0.0);
  s.stddev = v.number_or("stddev", 0.0);
  return s;
}

/// Population stddev / mean over a small sample set; 0 with < 2 samples
/// or a non-positive mean.
double rel_stddev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  const double mean = sum / static_cast<double>(xs.size());
  if (mean <= 0.0) return 0.0;
  double sq = 0.0;
  for (double x : xs) sq += (x - mean) * (x - mean);
  return std::sqrt(sq / static_cast<double>(xs.size())) / mean;
}

}  // namespace

void write_bench_record_json(std::ostream& out, const BenchRecord& r) {
  const auto saved_precision = out.precision();
  out.precision(std::numeric_limits<double>::max_digits10);

  out << "{\"schema_version\":" << r.schema_version << ",\"name\":";
  write_escaped(out, r.name);
  out << ",\"created_by\":";
  write_escaped(out, r.created_by);

  const BenchSetup& c = r.config;
  out << ",\"config\":{\"generator\":";
  write_escaped(out, c.generator);
  out << ",\"scale\":" << c.scale << ",\"edge_factor\":" << c.edge_factor
      << ",\"graph_seed\":" << c.graph_seed << ",\"algorithm\":";
  write_escaped(out, c.algorithm);
  out << ",\"machine\":";
  write_escaped(out, c.machine);
  out << ",\"wire_format\":";
  write_escaped(out, c.wire_format);
  out << ",\"cores\":" << c.cores << ",\"ranks\":" << c.ranks
      << ",\"threads_per_rank\":" << c.threads_per_rank
      << ",\"sources\":" << c.sources << ",\"repetitions\":" << c.repetitions
      << ",\"source_seed\":" << c.source_seed
      << ",\"faults_enabled\":" << (c.faults_enabled ? "true" : "false")
      << ",\"fault_plan\":";
  write_escaped(out, c.fault_plan);
  out << "}";

  out << ",\"results\":{\"teps\":";
  write_summary(out, r.teps);
  out << ",\"harmonic_mean_teps\":" << r.harmonic_mean_teps
      << ",\"mean_seconds\":" << r.mean_seconds
      << ",\"comm_seconds_mean\":" << r.comm_seconds_mean
      << ",\"comp_seconds_mean\":" << r.comp_seconds_mean;
  out << ",\"noise\":{\"teps_rel_stddev\":" << r.noise.teps_rel_stddev
      << ",\"seconds_rel_stddev\":" << r.noise.seconds_rel_stddev
      << ",\"comm_rel_stddev\":" << r.noise.comm_rel_stddev << "}";
  out << ",\"repetitions\":[";
  for (std::size_t i = 0; i < r.repetitions.size(); ++i) {
    const BenchRepetition& rep = r.repetitions[i];
    if (i > 0) out << ',';
    out << "{\"source_seed\":" << rep.source_seed
        << ",\"sources\":" << rep.sources
        << ",\"validated\":" << rep.validated << ",\"failed\":" << rep.failed
        << ",\"harmonic_mean_teps\":" << rep.harmonic_mean_teps
        << ",\"mean_seconds\":" << rep.mean_seconds
        << ",\"comm_seconds_mean\":" << rep.comm_seconds_mean
        << ",\"comp_seconds_mean\":" << rep.comp_seconds_mean << "}";
  }
  out << "]}";

  out << ",\"levels\":[";
  for (std::size_t i = 0; i < r.levels.size(); ++i) {
    const BenchLevelSplit& l = r.levels[i];
    if (i > 0) out << ',';
    out << "{\"level\":" << l.level << ",\"compute_mean\":" << l.compute_mean
        << ",\"wait_mean\":" << l.wait_mean
        << ",\"transfer_mean\":" << l.transfer_mean
        << ",\"wait_max\":" << l.wait_max << ",\"wait_p99\":" << l.wait_p99
        << ",\"straggler_rank\":" << l.straggler_rank
        << ",\"straggler_phase\":";
    write_escaped(out, l.straggler_phase);
    out << ",\"sites\":{";
    bool first_site = true;
    for (const auto& [site, seconds] : l.sites) {
      if (!first_site) out << ',';
      first_site = false;
      write_escaped(out, site);
      out << ':' << seconds;
    }
    out << "}}";
  }
  out << "]";

  const BenchImbalanceSummary& im = r.imbalance;
  out << ",\"imbalance\":{\"ranks\":" << im.ranks
      << ",\"comm_imbalance\":" << im.comm_imbalance
      << ",\"comp_imbalance\":" << im.comp_imbalance
      << ",\"busy_imbalance\":" << im.busy_imbalance
      << ",\"wait_imbalance\":" << im.wait_imbalance
      << ",\"wait_fraction\":" << im.wait_fraction << ",\"straggler_ranks\":[";
  for (std::size_t i = 0; i < im.straggler_ranks.size(); ++i) {
    if (i > 0) out << ',';
    out << im.straggler_ranks[i];
  }
  out << "],\"level_ids\":[";
  for (std::size_t i = 0; i < im.level_ids.size(); ++i) {
    if (i > 0) out << ',';
    out << im.level_ids[i];
  }
  out << "],\"wait_heatmap\":[";
  for (std::size_t i = 0; i < im.wait_heatmap.size(); ++i) {
    if (i > 0) out << ',';
    out << '[';
    for (std::size_t j = 0; j < im.wait_heatmap[i].size(); ++j) {
      if (j > 0) out << ',';
      out << im.wait_heatmap[i][j];
    }
    out << ']';
  }
  out << "]}";

  // Schema-additive: atlas block only when a profile run carried one, so
  // records from unobserved runs stay byte-identical to pre-atlas output.
  if (r.atlas.present) {
    const BenchAtlasSummary& at = r.atlas;
    out << ",\"atlas\":{\"grid_rows\":" << at.grid_rows
        << ",\"grid_cols\":" << at.grid_cols
        << ",\"total_bytes\":" << at.total_bytes
        << ",\"network_bytes\":" << at.network_bytes
        << ",\"max_pair_share\":" << at.max_pair_share
        << ",\"row_skew\":" << at.row_skew << ",\"col_skew\":" << at.col_skew
        << ",\"hotspot_rank\":" << at.hotspot_rank
        << ",\"incast_rank\":" << at.incast_rank
        << ",\"locality_share\":" << at.locality_share
        << ",\"self_share\":" << at.self_share << "}";
  }

  out << ",\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : r.counters) {
    if (!first) out << ',';
    first = false;
    write_escaped(out, name);
    out << ':' << value;
  }
  out << "}}";
  out.precision(saved_precision);
}

std::string bench_record_to_json(const BenchRecord& record) {
  std::ostringstream out;
  write_bench_record_json(out, record);
  return out.str();
}

BenchRecord parse_bench_record(const std::string& json) {
  try {
    const util::JsonValue doc = util::parse_json(json);
    if (!doc.is_object() || !doc.has("schema_version")) {
      throw BenchSchemaError("not a BenchRecord (no schema_version)");
    }
    const int version = static_cast<int>(doc.at("schema_version").as_int());
    if (version != kBenchRecordSchemaVersion) {
      throw BenchSchemaError(
          "schema_version " + std::to_string(version) + ", this build reads " +
          std::to_string(kBenchRecordSchemaVersion) +
          " — refresh the baselines (see EXPERIMENTS.md)");
    }

    BenchRecord r;
    r.schema_version = version;
    r.name = doc.at("name").as_string();
    r.created_by = doc.string_or("created_by", "");

    const util::JsonValue& c = doc.at("config");
    r.config.generator = c.string_or("generator", "rmat");
    r.config.scale = static_cast<int>(c.int_or("scale", 0));
    r.config.edge_factor = static_cast<int>(c.int_or("edge_factor", 16));
    r.config.graph_seed =
        static_cast<std::uint64_t>(c.int_or("graph_seed", 1));
    r.config.algorithm = c.string_or("algorithm", "");
    r.config.machine = c.string_or("machine", "");
    r.config.wire_format = c.string_or("wire_format", "raw");
    r.config.cores = static_cast<int>(c.int_or("cores", 0));
    r.config.ranks = static_cast<int>(c.int_or("ranks", 0));
    r.config.threads_per_rank =
        static_cast<int>(c.int_or("threads_per_rank", 1));
    r.config.sources = static_cast<int>(c.int_or("sources", 0));
    r.config.repetitions = static_cast<int>(c.int_or("repetitions", 0));
    r.config.source_seed =
        static_cast<std::uint64_t>(c.int_or("source_seed", 0));
    r.config.faults_enabled =
        c.has("faults_enabled") && c.at("faults_enabled").as_bool();
    r.config.fault_plan = c.string_or("fault_plan", "");

    const util::JsonValue& res = doc.at("results");
    r.teps = parse_summary(res.at("teps"));
    r.harmonic_mean_teps = res.number_or("harmonic_mean_teps", 0.0);
    r.mean_seconds = res.number_or("mean_seconds", 0.0);
    r.comm_seconds_mean = res.number_or("comm_seconds_mean", 0.0);
    r.comp_seconds_mean = res.number_or("comp_seconds_mean", 0.0);
    if (res.has("noise")) {
      const util::JsonValue& n = res.at("noise");
      r.noise.teps_rel_stddev = n.number_or("teps_rel_stddev", 0.0);
      r.noise.seconds_rel_stddev = n.number_or("seconds_rel_stddev", 0.0);
      r.noise.comm_rel_stddev = n.number_or("comm_rel_stddev", 0.0);
    }
    if (res.has("repetitions")) {
      for (const util::JsonValue& rep : res.at("repetitions").items) {
        BenchRepetition b;
        b.source_seed =
            static_cast<std::uint64_t>(rep.int_or("source_seed", 0));
        b.sources = static_cast<int>(rep.int_or("sources", 0));
        b.validated = static_cast<int>(rep.int_or("validated", 0));
        b.failed = static_cast<int>(rep.int_or("failed", 0));
        b.harmonic_mean_teps = rep.number_or("harmonic_mean_teps", 0.0);
        b.mean_seconds = rep.number_or("mean_seconds", 0.0);
        b.comm_seconds_mean = rep.number_or("comm_seconds_mean", 0.0);
        b.comp_seconds_mean = rep.number_or("comp_seconds_mean", 0.0);
        r.repetitions.push_back(std::move(b));
      }
    }

    if (doc.has("levels")) {
      for (const util::JsonValue& lv : doc.at("levels").items) {
        BenchLevelSplit l;
        l.level = static_cast<int>(lv.int_or("level", -1));
        l.compute_mean = lv.number_or("compute_mean", 0.0);
        l.wait_mean = lv.number_or("wait_mean", 0.0);
        l.transfer_mean = lv.number_or("transfer_mean", 0.0);
        l.wait_max = lv.number_or("wait_max", 0.0);
        l.wait_p99 = lv.number_or("wait_p99", 0.0);
        l.straggler_rank = static_cast<int>(lv.int_or("straggler_rank", 0));
        l.straggler_phase = lv.string_or("straggler_phase", "");
        // Schema-additive: per-site transfer split, absent in old records.
        if (lv.has("sites")) {
          for (const auto& [site, seconds] : lv.at("sites").members) {
            l.sites[site] = seconds.as_number();
          }
        }
        r.levels.push_back(std::move(l));
      }
    }

    if (doc.has("imbalance")) {
      const util::JsonValue& im = doc.at("imbalance");
      r.imbalance.ranks = static_cast<int>(im.int_or("ranks", 0));
      r.imbalance.comm_imbalance = im.number_or("comm_imbalance", 1.0);
      r.imbalance.comp_imbalance = im.number_or("comp_imbalance", 1.0);
      r.imbalance.busy_imbalance = im.number_or("busy_imbalance", 1.0);
      r.imbalance.wait_imbalance = im.number_or("wait_imbalance", 1.0);
      r.imbalance.wait_fraction = im.number_or("wait_fraction", 0.0);
      if (im.has("straggler_ranks")) {
        for (const util::JsonValue& v : im.at("straggler_ranks").items) {
          r.imbalance.straggler_ranks.push_back(static_cast<int>(v.as_int()));
        }
      }
      if (im.has("level_ids")) {
        for (const util::JsonValue& v : im.at("level_ids").items) {
          r.imbalance.level_ids.push_back(static_cast<int>(v.as_int()));
        }
      }
      if (im.has("wait_heatmap")) {
        for (const util::JsonValue& row : im.at("wait_heatmap").items) {
          std::vector<double> cells;
          cells.reserve(row.items.size());
          for (const util::JsonValue& v : row.items) {
            cells.push_back(v.as_number());
          }
          r.imbalance.wait_heatmap.push_back(std::move(cells));
        }
      }
    }

    if (doc.has("atlas")) {
      const util::JsonValue& at = doc.at("atlas");
      r.atlas.present = true;
      r.atlas.grid_rows = static_cast<int>(at.int_or("grid_rows", 0));
      r.atlas.grid_cols = static_cast<int>(at.int_or("grid_cols", 0));
      r.atlas.total_bytes = at.int_or("total_bytes", 0);
      r.atlas.network_bytes = at.int_or("network_bytes", 0);
      r.atlas.max_pair_share = at.number_or("max_pair_share", 0.0);
      r.atlas.row_skew = at.number_or("row_skew", 1.0);
      r.atlas.col_skew = at.number_or("col_skew", 1.0);
      r.atlas.hotspot_rank = static_cast<int>(at.int_or("hotspot_rank", -1));
      r.atlas.incast_rank = static_cast<int>(at.int_or("incast_rank", -1));
      r.atlas.locality_share = at.number_or("locality_share", 0.0);
      r.atlas.self_share = at.number_or("self_share", 0.0);
    }

    if (doc.has("counters")) {
      for (const auto& [name, value] : doc.at("counters").members) {
        r.counters[name] = value.as_int();
      }
    }
    return r;
  } catch (const BenchSchemaError&) {
    throw;
  } catch (const std::exception& e) {
    throw BenchSchemaError(std::string("malformed BenchRecord: ") + e.what());
  }
}

BenchRecord load_bench_record(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw BenchSchemaError("cannot read " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    return parse_bench_record(buffer.str());
  } catch (const BenchSchemaError& e) {
    throw BenchSchemaError(path + ": " + e.what());
  }
}

void save_bench_record(const std::string& path, const BenchRecord& record) {
  std::ofstream out(path);
  if (!out) throw BenchSchemaError("cannot write " + path);
  write_bench_record_json(out, record);
  out << '\n';
}

std::string bench_record_filename(const std::string& name) {
  return "BENCH_" + name + ".json";
}

void BenchRecordBuilder::add_repetition(std::uint64_t source_seed,
                                        std::span<const bfs::RunReport> reports,
                                        eid_t edge_denominator, int validated,
                                        int failed) {
  BenchRepetition rep;
  rep.source_seed = source_seed;
  rep.sources = static_cast<int>(reports.size());
  rep.validated = validated;
  rep.failed = failed;

  double recip_sum = 0.0;
  for (const bfs::RunReport& report : reports) {
    const double teps = report.teps(edge_denominator);
    teps_samples_.push_back(teps);
    if (teps > 0.0) recip_sum += 1.0 / teps;
    rep.mean_seconds += report.total_seconds;
    rep.comm_seconds_mean += report.comm_seconds_mean;
    rep.comp_seconds_mean += report.comp_seconds_mean;
    seconds_sum_ += report.total_seconds;
    comm_sum_ += report.comm_seconds_mean;
    comp_sum_ += report.comp_seconds_mean;
    ++run_count_;
  }
  if (!reports.empty()) {
    const auto k = static_cast<double>(reports.size());
    rep.harmonic_mean_teps = recip_sum > 0.0 ? k / recip_sum : 0.0;
    rep.mean_seconds /= k;
    rep.comm_seconds_mean /= k;
    rep.comp_seconds_mean /= k;
  }
  record_.repetitions.push_back(std::move(rep));
}

void BenchRecordBuilder::attach_profile(const Tracer* tracer,
                                        const MetricsRegistry* metrics,
                                        const bfs::RunReport& profile_run,
                                        int ranks) {
  record_.imbalance.ranks = ranks;
  record_.imbalance.comm_imbalance =
      util::imbalance(profile_run.per_rank_comm);
  record_.imbalance.comp_imbalance =
      util::imbalance(profile_run.per_rank_comp);

  if (tracer != nullptr) {
    const CriticalPathReport cp = analyze_critical_path(*tracer, ranks);
    record_.levels.clear();
    for (const LevelAttribution& la : cp.levels) {
      BenchLevelSplit l;
      l.level = la.level;
      l.compute_mean = la.compute_mean;
      l.wait_mean = la.wait_mean;
      double transfer = 0.0;
      for (const auto& [site, seconds] : la.collective_seconds) {
        transfer += seconds;
        l.sites[site] = seconds;
      }
      l.transfer_mean = transfer;
      l.wait_max = la.wait_max;
      l.wait_p99 = la.wait_p99;
      l.straggler_rank = la.straggler_rank;
      l.straggler_phase = la.straggler_phase;
      record_.levels.push_back(std::move(l));
    }

    const ImbalanceProfile profile = profile_imbalance(*tracer, ranks);
    record_.imbalance.busy_imbalance = profile.busy_imbalance;
    record_.imbalance.wait_imbalance = profile.wait_imbalance;
    record_.imbalance.wait_fraction = profile.wait_fraction;
    record_.imbalance.straggler_ranks = profile.straggler_ranks;
    record_.imbalance.level_ids = profile.level_ids;
    record_.imbalance.wait_heatmap = profile.wait_seconds;
  }

  if (metrics != nullptr) {
    for (const auto& [name, value] : metrics->counters()) {
      record_.counters[name] = value;
    }
  }
}

void BenchRecordBuilder::attach_atlas(const CommAtlas* atlas) {
  if (atlas == nullptr) return;
  const AtlasSummary s = atlas->summary();
  if (s.total_bytes == 0) return;  // nothing recorded — keep the block out
  record_.atlas.present = true;
  record_.atlas.grid_rows = s.grid_rows;
  record_.atlas.grid_cols = s.grid_cols;
  record_.atlas.total_bytes = static_cast<std::int64_t>(s.total_bytes);
  record_.atlas.network_bytes = static_cast<std::int64_t>(s.network_bytes);
  record_.atlas.max_pair_share = s.max_pair_share;
  record_.atlas.row_skew = s.row_skew;
  record_.atlas.col_skew = s.col_skew;
  record_.atlas.hotspot_rank = s.hotspot_rank;
  record_.atlas.incast_rank = s.incast_rank;
  record_.atlas.locality_share = s.locality_share;
  record_.atlas.self_share = s.self_share;
}

BenchRecord BenchRecordBuilder::finish() {
  record_.teps = util::summarize(teps_samples_);
  record_.harmonic_mean_teps = record_.teps.harmonic_mean;
  if (run_count_ > 0) {
    const auto n = static_cast<double>(run_count_);
    record_.mean_seconds = seconds_sum_ / n;
    record_.comm_seconds_mean = comm_sum_ / n;
    record_.comp_seconds_mean = comp_sum_ / n;
  }

  std::vector<double> rep_teps;
  std::vector<double> rep_seconds;
  std::vector<double> rep_comm;
  for (const BenchRepetition& rep : record_.repetitions) {
    rep_teps.push_back(rep.harmonic_mean_teps);
    rep_seconds.push_back(rep.mean_seconds);
    rep_comm.push_back(rep.comm_seconds_mean);
  }
  record_.noise.teps_rel_stddev = rel_stddev(rep_teps);
  record_.noise.seconds_rel_stddev = rel_stddev(rep_seconds);
  record_.noise.comm_rel_stddev = rel_stddev(rep_comm);

  record_.config.repetitions = static_cast<int>(record_.repetitions.size());
  if (!record_.repetitions.empty()) {
    record_.config.sources = record_.repetitions.front().sources;
  }
  return record_;
}

}  // namespace dbfs::obs
