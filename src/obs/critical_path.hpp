// Critical-path and wait-attribution analysis over a virtual-time trace.
//
// The per-level accounting the paper builds its analysis on (Table 1's
// communication decomposition, Figure 4's idle-time heatmap) is derived
// here directly from trace events instead of bespoke accounting inside
// the algorithms: for each BFS level, which rank was the straggler
// everyone else waited on, which compute phase made it late, how the wait
// time distributes across ranks (the heatmap row), and how many mean
// per-rank seconds each collective pattern contributed.
//
// Invariants (verified by tests/test_trace.cpp): per-rank sums of
// compute + wait + transfer spans reconcile with the cluster clocks the
// RunReport is built from, and the per-pattern transfer means equal the
// RunReport's per-collective seconds to 1e-9.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace dbfs::obs {

class Tracer;

/// One BFS level's attribution (levels are the spans' `level` tags).
struct LevelAttribution {
  int level = -1;
  double begin = 0.0;  ///< earliest span begin at this level
  double end = 0.0;    ///< latest span end at this level
  double makespan() const { return end - begin; }

  /// The rank the level waited on: the one with the least wait time (it
  /// arrives last at the collectives, so everyone else idles on it).
  int straggler_rank = 0;
  /// The compute phase the straggler spent the most time in this level —
  /// the paper's "which phase made it late".
  std::string straggler_phase;
  double straggler_phase_seconds = 0.0;

  double compute_mean = 0.0;  ///< mean per-rank compute seconds
  double compute_max = 0.0;
  double wait_mean = 0.0;  ///< mean per-rank barrier-wait seconds
  double wait_max = 0.0;
  double wait_p95 = 0.0;
  double wait_p99 = 0.0;

  /// Per-rank wait seconds — one row of the Figure 4 idle-time heatmap.
  std::vector<double> wait_by_rank;

  /// Mean per-rank transfer seconds by collective site at this level,
  /// i.e. how much each collective contributed to the level.
  std::map<std::string, double> collective_seconds;
};

/// Whole-run contribution of one collective pattern (Table 1 rows).
struct PatternDecomposition {
  std::string pattern;
  std::int64_t spans = 0;       ///< participant-spans recorded
  double transfer_mean = 0.0;   ///< mean per-rank transfer seconds
  double wait_mean = 0.0;       ///< mean per-rank wait seconds at it
};

struct CriticalPathReport {
  int ranks = 0;
  double total_seconds = 0.0;    ///< latest span end (the makespan)
  double compute_mean = 0.0;     ///< whole-run mean per-rank seconds
  double wait_mean = 0.0;
  double transfer_mean = 0.0;

  std::vector<LevelAttribution> levels;          ///< ascending by level
  std::vector<PatternDecomposition> decomposition;  ///< by pattern name

  /// Sum of transfer means over the decomposition — with wait_mean, the
  /// split of comm time into data movement vs barrier idling.
  double transfer_total() const;
};

/// Run the pass. `ranks` bounds the heatmap rows; the tracer's own rank
/// table is used when it is larger.
CriticalPathReport analyze_critical_path(const Tracer& tracer, int ranks);

/// Serialize as one JSON object (embedded into the run report by
/// bfs::write_report_json when requested).
void write_critical_path_json(std::ostream& out,
                              const CriticalPathReport& report);

/// Human-readable per-level table for CLI output: level, makespan,
/// straggler, its dominant phase, wait mean/max/p99, top collective.
std::string format_critical_path_table(const CriticalPathReport& report);

}  // namespace dbfs::obs
