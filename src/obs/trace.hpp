// Virtual-time tracing for the cluster simulator.
//
// A Tracer records one span per (rank, event): compute segments charged by
// the algorithms, and — for every collective — the barrier-wait sub-span
// (from the rank's arrival until the slowest participant arrives) and the
// transfer sub-span (the synchronized window in which the priced transfer
// happens). Fault events (transient-failure backoff/re-issue, checksum
// retries) are recorded as instant markers. Every record carries the BFS
// level current at the time, so downstream passes (obs/critical_path.hpp)
// can attribute makespan per level, per rank, and per phase.
//
// The tracer is entirely passive: nothing in the simulator consults it,
// so attaching one cannot perturb clocks, traffic, or fault draws. Spans
// are buffered per rank, which makes recording safe from the parallel
// `for_each_rank` phases as long as each rank only records about itself
// (the convention those phases already follow for all rank state).
//
// Export is Chrome trace-event JSON (the `traceEvents` array format),
// loadable in Perfetto / chrome://tracing: one pid per run, one tid per
// simulated rank, timestamps in virtual microseconds.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

namespace dbfs::obs {

enum class SpanKind : std::uint8_t {
  kCompute,   ///< local work charged via Cluster::charge_compute
  kWait,      ///< blocked at a collective until the slowest rank arrived
  kTransfer,  ///< the synchronized transfer window of a collective
};

/// Chrome trace `cat` string for a span kind.
const char* to_string(SpanKind kind);

struct Span {
  const char* name;     ///< site label ("2d-expand", "1d-scan", ...)
  const char* pattern;  ///< collective pattern name; "" for compute spans
  SpanKind kind;
  int level;            ///< BFS level current when recorded; -1 outside
  double begin = 0.0;   ///< virtual seconds
  double end = 0.0;
};

/// Point event (fault injection markers: backoff, re-issue, checksum
/// retry). `seconds` carries the priced duration when one applies.
struct Instant {
  const char* name;
  int rank;
  int level;
  double at = 0.0;
  double seconds = 0.0;
};

class Tracer {
 public:
  Tracer() = default;
  explicit Tracer(int ranks) { ensure_ranks(ranks); }

  /// Pre-size the per-rank buffers (Cluster::set_observers calls this so
  /// recording never reallocates the outer table mid-run).
  void ensure_ranks(int ranks);
  int ranks() const noexcept { return static_cast<int>(per_rank_.size()); }

  /// Current BFS level tag applied to subsequent records (-1 = outside a
  /// level, e.g. setup).
  void set_level(int level) noexcept { level_ = level; }
  int level() const noexcept { return level_; }

  /// Record one span for `rank`. `name` and `pattern` must be static
  /// strings (they are stored unowned). Safe to call concurrently for
  /// distinct ranks.
  void record(int rank, SpanKind kind, const char* name, const char* pattern,
              double begin, double end) {
    if (rank < 0 || rank >= ranks()) return;
    per_rank_[static_cast<std::size_t>(rank)].push_back(
        Span{name, pattern, kind, level_, begin, end});
  }

  /// Record a fault marker attributed to `rank` at virtual time `at`.
  void instant(int rank, const char* name, double at, double seconds = 0.0) {
    instants_.push_back(Instant{name, rank, level_, at, seconds});
  }

  const std::vector<Span>& spans(int rank) const {
    return per_rank_[static_cast<std::size_t>(rank)];
  }
  const std::vector<Instant>& instants() const noexcept { return instants_; }

  std::size_t total_spans() const noexcept;

  /// Drop all recorded events, keeping the rank table (called by
  /// Cluster::reset_accounting so each run traces from a clean slate).
  void clear();

  /// Write the whole trace as a Chrome trace-event JSON object:
  /// {"traceEvents":[...], "displayTimeUnit":"ms"}. Timestamps are
  /// virtual microseconds; tid = rank, pid = 0.
  void write_chrome_json(std::ostream& out) const;

 private:
  int level_ = -1;
  std::vector<std::vector<Span>> per_rank_;
  std::vector<Instant> instants_;
};

}  // namespace dbfs::obs
