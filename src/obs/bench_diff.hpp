// Noise-aware comparison of two BenchRecord sets — the regression gate
// behind the bench-smoke preset.
//
// Records are matched by name; for each pair the headline metrics
// (harmonic-mean TEPS, mean search seconds, mean comm seconds) are
// compared with a noise model derived from the records' own
// across-repetition variance: a delta counts as a regression only when it
// is worse in the metric's direction AND it exceeds the pooled noise band
// (sigma_k x sqrt(sigma_base^2 + sigma_cur^2), relative) OR the absolute
// relative floor rel_floor (default 5% — a big shift is flagged even
// under a noisy configuration). Deltas below min_rel are ignored
// entirely, which keeps float-formatting jitter from ever tripping the
// gate. Improvements are reported but never fail the diff.
//
// Pairs whose configs disagree (different scale/algorithm/cores/wire
// format under the same name) are refused into `errors` rather than
// compared — a renamed or re-purposed record must not masquerade as a
// trajectory point.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "obs/bench_record.hpp"

namespace dbfs::obs {

struct BenchDiffOptions {
  double sigma_k = 3.0;    ///< noise-band multiplier (k·σ)
  double rel_floor = 0.05; ///< always flag worse deltas beyond this
  double min_rel = 0.001;  ///< ignore deltas below this entirely
};

struct BenchMetricDelta {
  std::string record;
  std::string metric;
  bool higher_is_better = false;
  double baseline = 0.0;
  double current = 0.0;
  double rel_delta = 0.0;   ///< (current - baseline) / baseline, signed
  double noise_band = 0.0;  ///< sigma_k x pooled relative stddev
  bool regression = false;
  bool improvement = false;
};

struct BenchDiffReport {
  std::vector<BenchMetricDelta> deltas;
  std::vector<std::string> only_in_baseline;  ///< names skipped (info only)
  std::vector<std::string> only_in_current;
  std::vector<std::string> errors;  ///< config mismatches etc. — fatal
  int compared = 0;     ///< record pairs actually diffed
  int regressions = 0;
  int improvements = 0;

  bool ok() const { return regressions == 0 && errors.empty(); }
};

BenchDiffReport diff_bench_records(std::span<const BenchRecord> baseline,
                                   std::span<const BenchRecord> current,
                                   const BenchDiffOptions& options = {});

/// Human-readable table: one line per compared metric, regressions
/// prefixed REGRESSION, plus the skip/error notes.
std::string format_bench_diff(const BenchDiffReport& report);

}  // namespace dbfs::obs
