#include "obs/imbalance.hpp"

#include <algorithm>
#include <cstdio>
#include <map>

#include "obs/trace.hpp"
#include "util/stats.hpp"

namespace dbfs::obs {

ImbalanceProfile profile_imbalance(const Tracer& tracer, int ranks) {
  ImbalanceProfile p;
  p.ranks = std::max(ranks, tracer.ranks());
  if (p.ranks <= 0) return p;

  // First pass: which levels exist.
  std::map<int, std::size_t> level_row;
  for (int r = 0; r < tracer.ranks(); ++r) {
    for (const Span& s : tracer.spans(r)) {
      if (s.level >= 0) level_row.emplace(s.level, 0);
    }
  }
  std::size_t row = 0;
  for (auto& [level, index] : level_row) {
    index = row++;
    p.level_ids.push_back(level);
  }

  const auto nranks = static_cast<std::size_t>(p.ranks);
  p.wait_seconds.assign(level_row.size(), std::vector<double>(nranks, 0.0));
  p.busy_seconds.assign(level_row.size(), std::vector<double>(nranks, 0.0));

  for (int r = 0; r < tracer.ranks(); ++r) {
    for (const Span& s : tracer.spans(r)) {
      if (s.level < 0) continue;
      const std::size_t i = level_row.at(s.level);
      const double dur = s.end - s.begin;
      if (s.kind == SpanKind::kWait) {
        p.wait_seconds[i][static_cast<std::size_t>(r)] += dur;
      } else {
        p.busy_seconds[i][static_cast<std::size_t>(r)] += dur;
      }
    }
  }

  p.rank_wait_total.assign(nranks, 0.0);
  p.rank_busy_total.assign(nranks, 0.0);
  std::map<int, int> straggler_hits;
  for (std::size_t i = 0; i < p.level_ids.size(); ++i) {
    for (std::size_t r = 0; r < nranks; ++r) {
      p.rank_wait_total[r] += p.wait_seconds[i][r];
      p.rank_busy_total[r] += p.busy_seconds[i][r];
    }
    p.level_busy_imbalance.push_back(util::imbalance(p.busy_seconds[i]));
    const auto busiest = std::max_element(p.busy_seconds[i].begin(),
                                          p.busy_seconds[i].end());
    const int straggler =
        static_cast<int>(busiest - p.busy_seconds[i].begin());
    p.straggler_rank.push_back(straggler);
    ++straggler_hits[straggler];
  }

  p.busy_imbalance = util::imbalance(p.rank_busy_total);
  p.wait_imbalance = util::imbalance(p.rank_wait_total);
  double wait_sum = 0.0;
  double busy_sum = 0.0;
  for (std::size_t r = 0; r < nranks; ++r) {
    wait_sum += p.rank_wait_total[r];
    busy_sum += p.rank_busy_total[r];
  }
  p.wait_fraction =
      wait_sum + busy_sum > 0.0 ? wait_sum / (wait_sum + busy_sum) : 0.0;

  // Straggler set, most frequent first (ties break toward lower rank via
  // the map's ordering feeding a stable sort).
  p.straggler_ranks.reserve(straggler_hits.size());
  for (const auto& [rank, hits] : straggler_hits) {
    (void)hits;
    p.straggler_ranks.push_back(rank);
  }
  std::stable_sort(p.straggler_ranks.begin(), p.straggler_ranks.end(),
                   [&](int a, int b) {
                     return straggler_hits[a] > straggler_hits[b];
                   });
  return p;
}

std::string format_imbalance_heatmap(
    const std::vector<std::vector<double>>& matrix) {
  double max = 0.0;
  for (const auto& level : matrix) {
    for (double cell : level) max = std::max(max, cell);
  }
  std::string out;
  char buf[16];
  for (const auto& level : matrix) {
    for (double cell : level) {
      std::snprintf(buf, sizeof(buf), " %3.0f",
                    max > 0.0 ? 100.0 * cell / max : 0.0);
      out += buf;
    }
    out += '\n';
  }
  return out;
}

}  // namespace dbfs::obs
