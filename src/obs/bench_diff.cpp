#include "obs/bench_diff.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

namespace dbfs::obs {

namespace {

struct MetricView {
  const char* name;
  bool higher_is_better;
  double baseline;
  double current;
  double sigma_base;  ///< relative across-repetition stddev
  double sigma_cur;
};

void compare_metric(const std::string& record, const MetricView& m,
                    const BenchDiffOptions& opt, BenchDiffReport& out) {
  BenchMetricDelta d;
  d.record = record;
  d.metric = m.name;
  d.higher_is_better = m.higher_is_better;
  d.baseline = m.baseline;
  d.current = m.current;
  if (m.baseline != 0.0) {
    d.rel_delta = (m.current - m.baseline) / m.baseline;
  } else {
    d.rel_delta = m.current == 0.0 ? 0.0 : 1.0;
  }
  d.noise_band = opt.sigma_k * std::sqrt(m.sigma_base * m.sigma_base +
                                         m.sigma_cur * m.sigma_cur);

  const double magnitude = std::fabs(d.rel_delta);
  const bool worse = m.higher_is_better ? d.rel_delta < 0.0
                                        : d.rel_delta > 0.0;
  const bool significant =
      magnitude > opt.min_rel &&
      (magnitude > d.noise_band || magnitude > opt.rel_floor);
  d.regression = worse && significant;
  d.improvement = !worse && significant && magnitude > 0.0;

  if (d.regression) ++out.regressions;
  if (d.improvement) ++out.improvements;
  out.deltas.push_back(std::move(d));
}

bool config_matches(const BenchSetup& a, const BenchSetup& b,
                    std::string* why) {
  if (a.generator != b.generator) *why = "generator";
  else if (a.scale != b.scale) *why = "scale";
  else if (a.edge_factor != b.edge_factor) *why = "edge_factor";
  else if (a.algorithm != b.algorithm) *why = "algorithm";
  else if (a.wire_format != b.wire_format) *why = "wire_format";
  else if (a.cores != b.cores) *why = "cores";
  else if (a.faults_enabled != b.faults_enabled) *why = "faults";
  else return true;
  return false;
}

}  // namespace

BenchDiffReport diff_bench_records(std::span<const BenchRecord> baseline,
                                   std::span<const BenchRecord> current,
                                   const BenchDiffOptions& options) {
  BenchDiffReport report;

  std::map<std::string, const BenchRecord*> base_by_name;
  for (const BenchRecord& r : baseline) base_by_name[r.name] = &r;
  std::map<std::string, const BenchRecord*> cur_by_name;
  for (const BenchRecord& r : current) cur_by_name[r.name] = &r;

  for (const auto& [name, b] : base_by_name) {
    if (cur_by_name.find(name) == cur_by_name.end()) {
      report.only_in_baseline.push_back(name);
    }
    (void)b;
  }

  for (const auto& [name, cur] : cur_by_name) {
    const auto it = base_by_name.find(name);
    if (it == base_by_name.end()) {
      report.only_in_current.push_back(name);
      continue;
    }
    const BenchRecord& base = *it->second;

    std::string why;
    if (!config_matches(base.config, cur->config, &why)) {
      report.errors.push_back("record '" + name +
                              "': config mismatch on " + why +
                              " — not comparable, refresh the baseline");
      continue;
    }

    ++report.compared;
    compare_metric(name,
                   MetricView{"harmonic_mean_teps", true,
                              base.harmonic_mean_teps,
                              cur->harmonic_mean_teps,
                              base.noise.teps_rel_stddev,
                              cur->noise.teps_rel_stddev},
                   options, report);
    compare_metric(name,
                   MetricView{"mean_seconds", false, base.mean_seconds,
                              cur->mean_seconds,
                              base.noise.seconds_rel_stddev,
                              cur->noise.seconds_rel_stddev},
                   options, report);
    compare_metric(name,
                   MetricView{"comm_seconds_mean", false,
                              base.comm_seconds_mean, cur->comm_seconds_mean,
                              base.noise.comm_rel_stddev,
                              cur->noise.comm_rel_stddev},
                   options, report);
  }
  return report;
}

std::string format_bench_diff(const BenchDiffReport& report) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "%-28s %-20s %14s %14s %9s %9s  %s\n", "record", "metric",
                "baseline", "current", "delta", "noise", "verdict");
  out += line;
  for (const BenchMetricDelta& d : report.deltas) {
    const char* verdict = d.regression     ? "REGRESSION"
                          : d.improvement  ? "improved"
                                           : "ok";
    std::snprintf(line, sizeof(line),
                  "%-28s %-20s %14.6g %14.6g %+8.2f%% %8.2f%%  %s\n",
                  d.record.c_str(), d.metric.c_str(), d.baseline, d.current,
                  100.0 * d.rel_delta, 100.0 * d.noise_band, verdict);
    out += line;
  }
  for (const std::string& name : report.only_in_baseline) {
    out += "note: '" + name + "' only in baseline set (skipped)\n";
  }
  for (const std::string& name : report.only_in_current) {
    out += "note: '" + name + "' only in current set (skipped)\n";
  }
  for (const std::string& err : report.errors) {
    out += "error: " + err + "\n";
  }
  std::snprintf(line, sizeof(line),
                "%d record(s) compared: %d regression(s), %d improvement(s), "
                "%d error(s)\n",
                report.compared, report.regressions, report.improvements,
                static_cast<int>(report.errors.size()));
  out += line;
  return out;
}

}  // namespace dbfs::obs
