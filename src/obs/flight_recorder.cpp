#include "obs/flight_recorder.hpp"

#include <limits>
#include <ostream>

namespace dbfs::obs {

namespace {

/// Same escaping rules as the other hand-rolled writers (bench_record,
/// report_json): site/kind/key strings are static identifiers, but escape
/// defensively anyway so a dump is always valid JSON.
void write_escaped(std::ostream& out, const char* s) {
  out << '"';
  for (; *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xf]
              << "0123456789abcdef"[c & 0xf];
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

}  // namespace

FlightRecorder::FlightRecorder(std::size_t capacity)
    : ring_(capacity == 0 ? 1 : capacity) {}

void FlightRecorder::clear() noexcept {
  next_ = 0;
  recorded_ = 0;
}

std::vector<FlightEvent> FlightRecorder::chronological() const {
  std::vector<FlightEvent> out;
  const std::size_t held = size();
  out.reserve(held);
  // When the ring has wrapped, the oldest held event sits at next_.
  const std::size_t start = recorded_ > ring_.size() ? next_ : 0;
  for (std::size_t i = 0; i < held; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

void FlightRecorder::write_json(std::ostream& out) const {
  const auto old_precision = out.precision();
  out.precision(std::numeric_limits<double>::max_digits10);
  out << "{\"flight\":{\"capacity\":" << ring_.size()
      << ",\"recorded\":" << recorded_ << ",\"dropped\":" << dropped()
      << ",\"events\":[";
  const auto events = chronological();
  for (std::size_t i = 0; i < events.size(); ++i) {
    const FlightEvent& ev = events[i];
    if (i > 0) out << ',';
    out << "{\"t\":" << ev.t << ",\"kind\":";
    write_escaped(out, ev.kind);
    out << ",\"site\":";
    write_escaped(out, ev.site);
    out << ",\"rank\":" << ev.rank << ",\"level\":" << ev.level
        << ",\"payload\":{";
    bool first = true;
    for (int s = 0; s < FlightEvent::kSlots; ++s) {
      if (ev.key[s] == nullptr) continue;
      if (!first) out << ',';
      first = false;
      write_escaped(out, ev.key[s]);
      out << ':' << ev.value[s];
    }
    out << "}}";
  }
  out << "]}}\n";
  out.precision(old_precision);
}

}  // namespace dbfs::obs
