// Always-on flight recorder for post-mortem diagnosis.
//
// A bounded ring buffer of small structured events fed from cheap hooks
// in the simmpi collectives, the wire-format codec decisions, the
// checkpoint/recover transitions, and the per-level loops of the
// distributed BFS drivers. Unlike the Tracer (opt-in, unbounded, one
// span per rank per event), the recorder is meant to run on every
// distributed search at negligible cost: one fixed-size record per
// cluster-wide event, overwriting the oldest once the ring is full.
//
// Nothing in the simulator consults it, so recording cannot perturb
// clocks, traffic, or fault draws, and the run report stays
// byte-identical whether or not a recorder is attached. The buffer is
// serialized to JSON only on demand (`--flight-out`) or when a run dies
// (RankFailedError, validation failure) — the black-box dump that tells
// you what every site was doing when the failure hit.
//
// Timestamps are the cluster's max_now() sampled after the event's clock
// update: the simulated wall clock, which is non-decreasing across a
// run, so dumps are chronologically ordered and lintable
// (examples/trace_lint.cpp checks exactly this).
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <vector>

namespace dbfs::obs {

/// One recorded event. `kind`/`site` and payload keys must be static
/// strings (stored unowned, same contract as Tracer span names).
struct FlightEvent {
  static constexpr int kSlots = 4;

  double t = 0.0;          ///< virtual seconds (cluster max_now)
  const char* kind = "";   ///< "collective", "wire", "checkpoint",
                           ///< "recover", "fault", "level", "audit"
  const char* site = "";   ///< site label ("1d-fold", "2d-expand", ...)
  int rank = -1;           ///< affected rank; -1 = whole cluster
  int level = -1;          ///< BFS level current when recorded

  const char* key[kSlots] = {nullptr, nullptr, nullptr, nullptr};
  double value[kSlots] = {0.0, 0.0, 0.0, 0.0};

  /// Append one key=value payload slot; silently drops past kSlots.
  FlightEvent& set(const char* k, double v) noexcept {
    for (int i = 0; i < kSlots; ++i) {
      if (key[i] == nullptr) {
        key[i] = k;
        value[i] = v;
        return *this;
      }
    }
    return *this;
  }
};

class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);

  std::size_t capacity() const noexcept { return ring_.size(); }
  /// Events recorded over the recorder's lifetime (>= size()).
  std::uint64_t recorded() const noexcept { return recorded_; }
  /// Events overwritten because the ring was full.
  std::uint64_t dropped() const noexcept {
    return recorded_ > ring_.size() ? recorded_ - ring_.size() : 0;
  }
  /// Events currently held (min(recorded, capacity)).
  std::size_t size() const noexcept {
    return recorded_ < ring_.size() ? static_cast<std::size_t>(recorded_)
                                    : ring_.size();
  }

  /// Record one event, overwriting the oldest when full.
  void record(const FlightEvent& ev) noexcept {
    ring_[next_] = ev;
    next_ = next_ + 1 == ring_.size() ? 0 : next_ + 1;
    ++recorded_;
  }

  /// Record and return a reference for payload chaining:
  ///   flight->append("wire", "1d-fold", t, -1, level)
  ///         .set("raw_bytes", raw).set("encoded_bytes", enc);
  /// The reference is valid until the next record()/append() call.
  FlightEvent& append(const char* kind, const char* site, double t,
                      int rank, int level) noexcept {
    FlightEvent ev;
    ev.t = t;
    ev.kind = kind;
    ev.site = site;
    ev.rank = rank;
    ev.level = level;
    const std::size_t at = next_;
    record(ev);
    return ring_[at];
  }

  /// Drop all events (Cluster::reset_accounting calls this so each run's
  /// dump describes that run alone).
  void clear() noexcept;

  /// Held events in recording order, oldest first.
  std::vector<FlightEvent> chronological() const;

  /// Serialize the buffer as one JSON object:
  ///   {"flight":{"capacity":...,"recorded":...,"dropped":...,
  ///              "events":[{"t":...,"kind":...,"site":...,"rank":...,
  ///                         "level":...,"payload":{...}},...]}}
  /// trace_lint recognizes the top-level "flight" key.
  void write_json(std::ostream& out) const;

 private:
  std::vector<FlightEvent> ring_;
  std::size_t next_ = 0;
  std::uint64_t recorded_ = 0;
};

}  // namespace dbfs::obs
