// Metrics registry for the simulator: named counters, gauges, and
// log-scale histograms, populated by simmpi::comm (per-pattern call and
// byte accounting, per-rank collective wait times) and by the BFS kernel
// call sites (SpMSV flop/output distributions). Everything is keyed by
// name in ordered maps so the JSON serialization is deterministic, and
// the whole registry is passive — the simulator never reads it back, so
// attaching one cannot perturb a run.
//
// Histograms use base-2 log buckets: bucket k counts samples in
// [2^k, 2^(k+1)). That covers message sizes (bytes) and wait times
// (seconds, down to sub-nanosecond) in one fixed-size array with no
// per-sample allocation, and supports geometric-interpolation quantile
// estimates (p50/p95/p99 in the JSON output).
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

namespace dbfs::obs {

class LogHistogram {
 public:
  // Exponent range: 2^-40 (~1e-12, below any priced latency) through
  // 2^40 (~1e12, above any byte count we meter). Out-of-range samples
  // clamp to the edge buckets; zero/negative samples count in `zeros`.
  static constexpr int kMinExp = -40;
  static constexpr int kMaxExp = 40;
  static constexpr int kBuckets = kMaxExp - kMinExp + 1;

  void observe(double value);

  std::uint64_t count() const noexcept { return count_; }
  std::uint64_t zeros() const noexcept { return zeros_; }
  double sum() const noexcept { return sum_; }
  double min() const noexcept { return count_ > 0 ? min_ : 0.0; }
  double max() const noexcept { return count_ > 0 ? max_ : 0.0; }
  double mean() const noexcept {
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  }

  /// Bucket-interpolated quantile estimate, q in [0,1]. Exact for the
  /// zero mass; geometric interpolation within a log bucket otherwise.
  double quantile(double q) const;

  const std::array<std::uint64_t, kBuckets>& buckets() const noexcept {
    return buckets_;
  }

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;  ///< all observations, including zeros
  std::uint64_t zeros_ = 0;  ///< observations <= 0 (kept out of buckets)
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

class MetricsRegistry {
 public:
  /// Monotonic counter; created zeroed on first access.
  std::int64_t& counter(const std::string& name) { return counters_[name]; }
  /// Last-write-wins value.
  double& gauge(const std::string& name) { return gauges_[name]; }
  LogHistogram& histogram(const std::string& name) {
    return histograms_[name];
  }

  const std::map<std::string, std::int64_t>& counters() const noexcept {
    return counters_;
  }
  const std::map<std::string, double>& gauges() const noexcept {
    return gauges_;
  }
  const std::map<std::string, LogHistogram>& histograms() const noexcept {
    return histograms_;
  }

  bool empty() const noexcept {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  /// Drop every metric (Cluster::reset_accounting calls this so each run
  /// reports its own distributions).
  void clear();

  /// Serialize as one JSON object:
  /// {"counters":{...},"gauges":{...},
  ///  "histograms":{name:{count,zeros,sum,min,max,mean,p50,p95,p99,
  ///                      buckets:[[exp,count],...]}}}
  void write_json(std::ostream& out) const;
  std::string to_json() const;

  /// Serialize in the OpenMetrics / Prometheus text exposition format so
  /// the registry can feed standard dashboards: counters as `counter`
  /// (`dbfs_<name>_total`), gauges as `gauge`, and log histograms as
  /// cumulative-bucket `histogram` families with `le` upper bounds at the
  /// bucket edges (2^(exp+1); zeros land in the lowest bucket). Metric
  /// names are sanitized to [a-zA-Z0-9_:] with a `dbfs_` prefix; the
  /// output ends with the `# EOF` terminator the format requires.
  void write_openmetrics(std::ostream& out) const;

 private:
  std::map<std::string, std::int64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, LogHistogram> histograms_;
};

}  // namespace dbfs::obs
