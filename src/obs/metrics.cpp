#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

namespace dbfs::obs {

void LogHistogram::observe(double value) {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  if (!(value > 0.0)) {  // zeros, negatives, NaN: no log bucket
    ++zeros_;
    return;
  }
  const int exp = std::clamp(
      static_cast<int>(std::floor(std::log2(value))), kMinExp, kMaxExp);
  ++buckets_[static_cast<std::size_t>(exp - kMinExp)];
}

double LogHistogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  if (target <= static_cast<double>(zeros_)) return 0.0;
  std::uint64_t seen = zeros_;
  for (int i = 0; i < kBuckets; ++i) {
    const std::uint64_t c = buckets_[static_cast<std::size_t>(i)];
    if (c == 0) continue;
    if (static_cast<double>(seen + c) >= target) {
      const double lo = std::exp2(static_cast<double>(i + kMinExp));
      const double frac =
          (target - static_cast<double>(seen)) / static_cast<double>(c);
      // Geometric interpolation inside the bucket [lo, 2*lo).
      return lo * std::exp2(frac);
    }
    seen += c;
  }
  return max_;
}

void MetricsRegistry::clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

void MetricsRegistry::write_json(std::ostream& out) const {
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    if (!first) out << ",";
    first = false;
    out << "\"" << name << "\":" << value;
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges_) {
    if (!first) out << ",";
    first = false;
    out << "\"" << name << "\":" << value;
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out << ",";
    first = false;
    out << "\"" << name << "\":{\"count\":" << h.count()
        << ",\"zeros\":" << h.zeros() << ",\"sum\":" << h.sum()
        << ",\"min\":" << h.min() << ",\"max\":" << h.max()
        << ",\"mean\":" << h.mean() << ",\"p50\":" << h.quantile(0.50)
        << ",\"p95\":" << h.quantile(0.95) << ",\"p99\":" << h.quantile(0.99)
        << ",\"buckets\":[";
    bool first_bucket = true;
    for (int i = 0; i < LogHistogram::kBuckets; ++i) {
      const std::uint64_t c = h.buckets()[static_cast<std::size_t>(i)];
      if (c == 0) continue;
      if (!first_bucket) out << ",";
      first_bucket = false;
      out << "[" << i + LogHistogram::kMinExp << "," << c << "]";
    }
    out << "]}";
  }
  out << "}}";
}

std::string MetricsRegistry::to_json() const {
  std::ostringstream out;
  write_json(out);
  return out.str();
}

namespace {

/// Prometheus metric names allow [a-zA-Z0-9_:]; our dotted names map the
/// dots (and anything else) to underscores under a dbfs_ prefix.
std::string openmetrics_name(const std::string& name) {
  std::string out = "dbfs_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

}  // namespace

void MetricsRegistry::write_openmetrics(std::ostream& out) const {
  for (const auto& [name, value] : counters_) {
    const std::string m = openmetrics_name(name);
    out << "# TYPE " << m << " counter\n";
    out << m << "_total " << value << "\n";
  }
  for (const auto& [name, value] : gauges_) {
    const std::string m = openmetrics_name(name);
    out << "# TYPE " << m << " gauge\n";
    out << m << ' ' << value << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    const std::string m = openmetrics_name(name);
    out << "# TYPE " << m << " histogram\n";
    // Cumulative le buckets at the log-bucket upper edges. The zero mass
    // (observations <= 0) belongs under every finite bound, so it seeds
    // the running total.
    std::uint64_t cumulative = h.zeros();
    for (int i = 0; i < LogHistogram::kBuckets; ++i) {
      const std::uint64_t c = h.buckets()[static_cast<std::size_t>(i)];
      if (c == 0) continue;
      cumulative += c;
      out << m << "_bucket{le=\""
          << std::exp2(static_cast<double>(i + LogHistogram::kMinExp + 1))
          << "\"} " << cumulative << "\n";
    }
    out << m << "_bucket{le=\"+Inf\"} " << h.count() << "\n";
    out << m << "_sum " << h.sum() << "\n";
    out << m << "_count " << h.count() << "\n";
  }
  out << "# EOF\n";
}

}  // namespace dbfs::obs
