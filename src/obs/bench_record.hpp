// BenchRecord: the versioned, machine-readable artifact every benchmark
// run emits (BENCH_<name>.json), turning the ad-hoc printed tables into a
// perf trajectory that can be diffed across PRs (obs/bench_diff.hpp).
//
// One record = one benchmark configuration, run for >= 1 virtual-seed
// repetitions. It captures three layers the paper's analysis is built on:
//   * config    — generator/scale/algorithm/cores/wire format/fault plan,
//                 enough to re-run the point exactly;
//   * results   — the TEPS distribution over all (repetition, source)
//                 samples (util::Summary, so p95/p99 ride along), the
//                 Graph500 harmonic mean, mean search/comm/comp seconds,
//                 per-repetition roll-ups, and the across-repetition
//                 relative stddevs that bench_diff uses as its noise
//                 model;
//   * structure — the per-level compute/wait/transfer split from the
//                 critical-path pass (Table 1), the per-rank/per-level
//                 idle-time heatmap from the imbalance profiler (Fig 4),
//                 and the wire.*/fault.* metric counters.
//
// The JSON schema is versioned (kBenchRecordSchemaVersion); the parser
// refuses records from a different version with BenchSchemaError so the
// regression gate fails loudly instead of comparing apples to oranges.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "bfs/report.hpp"
#include "obs/imbalance.hpp"
#include "util/stats.hpp"
#include "util/types.hpp"

namespace dbfs::obs {

class Tracer;
class MetricsRegistry;
class CommAtlas;

inline constexpr int kBenchRecordSchemaVersion = 1;

/// Everything needed to reproduce the configuration of a record.
struct BenchSetup {
  std::string generator = "rmat";
  int scale = 0;
  int edge_factor = 16;
  std::uint64_t graph_seed = 1;
  std::string algorithm;
  std::string machine;
  std::string wire_format = "raw";
  int cores = 0;
  int ranks = 0;
  int threads_per_rank = 1;
  int sources = 0;        ///< BFS sources per repetition
  int repetitions = 0;
  std::uint64_t source_seed = 0;  ///< repetition r samples with seed + r
  bool faults_enabled = false;
  std::string fault_plan;  ///< human-readable plan summary; "" when none
};

/// One virtual-seed repetition's roll-up (the noise-model samples).
struct BenchRepetition {
  std::uint64_t source_seed = 0;
  int sources = 0;
  int validated = 0;
  int failed = 0;
  double harmonic_mean_teps = 0.0;
  double mean_seconds = 0.0;
  double comm_seconds_mean = 0.0;
  double comp_seconds_mean = 0.0;
};

/// Per-level compute/wait/transfer split (mean per-rank seconds), from
/// the critical-path pass over the profile run's trace.
struct BenchLevelSplit {
  int level = -1;
  double compute_mean = 0.0;
  double wait_mean = 0.0;
  double transfer_mean = 0.0;
  double wait_max = 0.0;
  double wait_p99 = 0.0;
  int straggler_rank = 0;
  std::string straggler_phase;
  /// Mean per-rank transfer seconds by collective site at this level
  /// (from LevelAttribution::collective_seconds). Schema-additive:
  /// absent in pre-doctor baselines, parsed as empty.
  std::map<std::string, double> sites;
};

/// Across-repetition relative stddevs (population stddev / mean; 0 when
/// fewer than two repetitions) — the re-run variance bench_diff scales by
/// k to decide whether a delta is noise.
struct BenchNoise {
  double teps_rel_stddev = 0.0;
  double seconds_rel_stddev = 0.0;
  double comm_rel_stddev = 0.0;
};

/// Fig 4-style imbalance snapshot of the profile run.
struct BenchImbalanceSummary {
  int ranks = 0;
  double comm_imbalance = 1.0;  ///< max/mean over per-rank comm seconds
  double comp_imbalance = 1.0;  ///< max/mean over per-rank compute seconds
  double busy_imbalance = 1.0;  ///< trace-derived, whole-run busy totals
  double wait_imbalance = 1.0;
  double wait_fraction = 0.0;   ///< idle share of all per-rank seconds
  std::vector<int> straggler_ranks;  ///< most-often-straggling first
  std::vector<int> level_ids;
  /// Idle seconds [level][rank]; empty when the run was not traced.
  std::vector<std::vector<double>> wait_heatmap;
};

/// Communication-atlas roll-up of the profile run (obs/comm_atlas.hpp).
/// Schema-additive: absent in records written before the atlas existed
/// (and in untraced runs), parsed back with `present` false.
struct BenchAtlasSummary {
  bool present = false;
  int grid_rows = 0;
  int grid_cols = 0;
  std::int64_t total_bytes = 0;
  std::int64_t network_bytes = 0;
  double max_pair_share = 0.0;
  double row_skew = 1.0;
  double col_skew = 1.0;
  int hotspot_rank = -1;
  int incast_rank = -1;
  double locality_share = 0.0;
  double self_share = 0.0;
};

struct BenchRecord {
  int schema_version = kBenchRecordSchemaVersion;
  std::string name;        ///< file stem: BENCH_<name>.json
  std::string created_by;  ///< "bench_suite", "graph500_runner", ...

  BenchSetup config;

  util::Summary teps;  ///< all (repetition, source) TEPS samples pooled
  double harmonic_mean_teps = 0.0;
  double mean_seconds = 0.0;
  double comm_seconds_mean = 0.0;
  double comp_seconds_mean = 0.0;
  BenchNoise noise;
  std::vector<BenchRepetition> repetitions;

  std::vector<BenchLevelSplit> levels;
  BenchImbalanceSummary imbalance;
  BenchAtlasSummary atlas;
  /// Metric counters from the profile run (wire.*, fault.*, comm.*).
  std::map<std::string, std::int64_t> counters;
};

struct BenchSchemaError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Serialize as one JSON object (max_digits10 precision, so a written
/// record parses back to the exact same doubles).
void write_bench_record_json(std::ostream& out, const BenchRecord& record);
std::string bench_record_to_json(const BenchRecord& record);

/// Parse a record. Throws BenchSchemaError when the document is not a
/// BenchRecord of the current schema version (including any structural
/// surprise the underlying JSON layer reports).
BenchRecord parse_bench_record(const std::string& json);

/// Read + parse one BENCH_*.json file; throws BenchSchemaError with the
/// path in the message on any failure.
BenchRecord load_bench_record(const std::string& path);

/// Write `record` to `path` (canonical name: dir + "/BENCH_<name>.json").
void save_bench_record(const std::string& path, const BenchRecord& record);

/// Canonical file name for a record name: "BENCH_<name>.json".
std::string bench_record_filename(const std::string& name);

/// Assembles a BenchRecord from engine outputs. Usage:
///   BenchRecordBuilder b;
///   b.record().name = ...; b.record().config = ...;   // fill setup
///   for each repetition: b.add_repetition(seed, reports, denom, ok, bad);
///   b.attach_profile(tracer, metrics, profile_report, ranks);  // optional
///   BenchRecord r = b.finish();
class BenchRecordBuilder {
 public:
  BenchRecord& record() { return record_; }

  /// Fold one repetition's per-source reports into the record: pools the
  /// TEPS samples and appends the repetition roll-up used for the noise
  /// model. `edge_denominator` is the Graph500 TEPS denominator.
  void add_repetition(std::uint64_t source_seed,
                      std::span<const bfs::RunReport> reports,
                      eid_t edge_denominator, int validated = 0,
                      int failed = 0);

  /// Capture the structural layers from one observed run: critical-path
  /// per-level splits (when `tracer` is non-null), the idle-time heatmap,
  /// metric counters, and per-rank comm/comp imbalance from the report.
  void attach_profile(const Tracer* tracer, const MetricsRegistry* metrics,
                      const bfs::RunReport& profile_run, int ranks);

  /// Fold the profile run's communication-atlas summary into the record.
  /// Null or empty atlas = no-op (the record keeps `atlas.present` false
  /// and its JSON stays byte-identical to a pre-atlas writer's).
  void attach_atlas(const CommAtlas* atlas);

  /// Compute the pooled summary + noise stddevs and return the record.
  BenchRecord finish();

 private:
  BenchRecord record_;
  std::vector<double> teps_samples_;
  double seconds_sum_ = 0.0;
  double comm_sum_ = 0.0;
  double comp_sum_ = 0.0;
  std::size_t run_count_ = 0;
};

}  // namespace dbfs::obs
