#include "obs/critical_path.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "obs/trace.hpp"
#include "util/stats.hpp"

namespace dbfs::obs {

namespace {

/// Mutable per-level accumulator keyed by level id.
struct LevelAccum {
  double begin = 0.0;
  double end = 0.0;
  bool seen = false;
  std::vector<double> wait_by_rank;
  std::vector<double> compute_by_rank;
  /// straggler phase attribution: per rank, per compute-phase seconds
  std::vector<std::map<std::string, double>> phase_by_rank;
  std::map<std::string, double> transfer_by_site;  ///< rank-seconds sums
};

}  // namespace

double CriticalPathReport::transfer_total() const {
  double total = 0.0;
  for (const PatternDecomposition& d : decomposition) {
    total += d.transfer_mean;
  }
  return total;
}

CriticalPathReport analyze_critical_path(const Tracer& tracer, int ranks) {
  CriticalPathReport report;
  report.ranks = std::max(ranks, tracer.ranks());
  const auto nranks = static_cast<std::size_t>(report.ranks);
  const double rank_div = report.ranks > 0
                              ? static_cast<double>(report.ranks)
                              : 1.0;

  std::map<int, LevelAccum> levels;
  struct PatternAccum {
    std::int64_t spans = 0;
    double transfer = 0.0;
    double wait = 0.0;
  };
  std::map<std::string, PatternAccum> patterns;
  double compute_sum = 0.0;
  double wait_sum = 0.0;
  double transfer_sum = 0.0;

  for (int r = 0; r < tracer.ranks(); ++r) {
    const auto ri = static_cast<std::size_t>(r);
    for (const Span& s : tracer.spans(r)) {
      const double dur = s.end - s.begin;
      report.total_seconds = std::max(report.total_seconds, s.end);

      if (s.pattern != nullptr && s.pattern[0] != '\0') {
        PatternAccum& pa = patterns[s.pattern];
        if (s.kind == SpanKind::kTransfer) {
          ++pa.spans;
          pa.transfer += dur;
        } else if (s.kind == SpanKind::kWait) {
          pa.wait += dur;
        }
      }
      switch (s.kind) {
        case SpanKind::kCompute:
          compute_sum += dur;
          break;
        case SpanKind::kWait:
          wait_sum += dur;
          break;
        case SpanKind::kTransfer:
          transfer_sum += dur;
          break;
      }

      if (s.level < 0) continue;
      LevelAccum& acc = levels[s.level];
      if (!acc.seen) {
        acc.seen = true;
        acc.begin = s.begin;
        acc.end = s.end;
        acc.wait_by_rank.assign(nranks, 0.0);
        acc.compute_by_rank.assign(nranks, 0.0);
        acc.phase_by_rank.resize(nranks);
      }
      acc.begin = std::min(acc.begin, s.begin);
      acc.end = std::max(acc.end, s.end);
      switch (s.kind) {
        case SpanKind::kCompute:
          acc.compute_by_rank[ri] += dur;
          acc.phase_by_rank[ri][s.name] += dur;
          break;
        case SpanKind::kWait:
          acc.wait_by_rank[ri] += dur;
          break;
        case SpanKind::kTransfer:
          acc.transfer_by_site[s.name] += dur;
          break;
      }
    }
  }

  report.compute_mean = compute_sum / rank_div;
  report.wait_mean = wait_sum / rank_div;
  report.transfer_mean = transfer_sum / rank_div;

  for (const auto& [name, pa] : patterns) {
    PatternDecomposition d;
    d.pattern = name;
    d.spans = pa.spans;
    d.transfer_mean = pa.transfer / rank_div;
    d.wait_mean = pa.wait / rank_div;
    report.decomposition.push_back(std::move(d));
  }

  for (auto& [level, acc] : levels) {
    LevelAttribution la;
    la.level = level;
    la.begin = acc.begin;
    la.end = acc.end;

    // The straggler is the rank others idle on: the one that waited
    // least at this level's collectives (ties break to the lower rank).
    std::size_t straggler = 0;
    for (std::size_t r = 1; r < acc.wait_by_rank.size(); ++r) {
      if (acc.wait_by_rank[r] < acc.wait_by_rank[straggler]) straggler = r;
    }
    la.straggler_rank = static_cast<int>(straggler);
    for (const auto& [phase, seconds] : acc.phase_by_rank[straggler]) {
      if (seconds > la.straggler_phase_seconds) {
        la.straggler_phase_seconds = seconds;
        la.straggler_phase = phase;
      }
    }

    const auto comp = util::summarize(acc.compute_by_rank);
    la.compute_mean = comp.mean;
    la.compute_max = comp.max;
    const auto wait = util::summarize(acc.wait_by_rank);
    la.wait_mean = wait.mean;
    la.wait_max = wait.max;
    la.wait_p95 = wait.p95;
    la.wait_p99 = wait.p99;
    la.wait_by_rank = std::move(acc.wait_by_rank);

    for (const auto& [site, rank_seconds] : acc.transfer_by_site) {
      la.collective_seconds[site] = rank_seconds / rank_div;
    }
    report.levels.push_back(std::move(la));
  }
  return report;
}

void write_critical_path_json(std::ostream& out,
                              const CriticalPathReport& report) {
  out << "{\"ranks\":" << report.ranks
      << ",\"total_seconds\":" << report.total_seconds
      << ",\"compute_mean\":" << report.compute_mean
      << ",\"wait_mean\":" << report.wait_mean
      << ",\"transfer_mean\":" << report.transfer_mean;

  out << ",\"decomposition\":[";
  for (std::size_t i = 0; i < report.decomposition.size(); ++i) {
    const PatternDecomposition& d = report.decomposition[i];
    if (i > 0) out << ",";
    out << "{\"pattern\":\"" << d.pattern << "\",\"spans\":" << d.spans
        << ",\"transfer_mean\":" << d.transfer_mean
        << ",\"wait_mean\":" << d.wait_mean << "}";
  }
  out << "]";

  out << ",\"levels\":[";
  for (std::size_t i = 0; i < report.levels.size(); ++i) {
    const LevelAttribution& l = report.levels[i];
    if (i > 0) out << ",";
    out << "{\"level\":" << l.level << ",\"begin\":" << l.begin
        << ",\"end\":" << l.end << ",\"makespan\":" << l.makespan()
        << ",\"straggler_rank\":" << l.straggler_rank
        << ",\"straggler_phase\":\"" << l.straggler_phase << "\""
        << ",\"straggler_phase_seconds\":" << l.straggler_phase_seconds
        << ",\"compute_mean\":" << l.compute_mean
        << ",\"compute_max\":" << l.compute_max
        << ",\"wait_mean\":" << l.wait_mean << ",\"wait_max\":" << l.wait_max
        << ",\"wait_p95\":" << l.wait_p95 << ",\"wait_p99\":" << l.wait_p99;
    out << ",\"collectives\":{";
    bool first = true;
    for (const auto& [site, seconds] : l.collective_seconds) {
      if (!first) out << ",";
      first = false;
      out << "\"" << site << "\":" << seconds;
    }
    out << "},\"wait_by_rank\":[";
    for (std::size_t r = 0; r < l.wait_by_rank.size(); ++r) {
      if (r > 0) out << ",";
      out << l.wait_by_rank[r];
    }
    out << "]}";
  }
  out << "]}";
}

std::string format_critical_path_table(const CriticalPathReport& report) {
  std::ostringstream out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "%-5s %-12s %-9s %-14s %-12s %-12s %-12s %s\n", "level",
                "makespan_s", "straggler", "late_phase", "wait_mean_s",
                "wait_max_s", "wait_p99_s", "top_collective");
  out << line;
  for (const LevelAttribution& l : report.levels) {
    const char* top_site = "-";
    double top_seconds = 0.0;
    for (const auto& [site, seconds] : l.collective_seconds) {
      if (seconds > top_seconds) {
        top_seconds = seconds;
        top_site = site.c_str();
      }
    }
    std::snprintf(line, sizeof(line),
                  "%-5d %-12.3e r%-8d %-14s %-12.3e %-12.3e %-12.3e %s "
                  "(%.3e s)\n",
                  l.level, l.makespan(), l.straggler_rank,
                  l.straggler_phase.empty() ? "-" : l.straggler_phase.c_str(),
                  l.wait_mean, l.wait_max, l.wait_p99, top_site, top_seconds);
    out << line;
  }
  std::snprintf(line, sizeof(line),
                "total %.3e s | per-rank mean: compute %.3e s, transfer "
                "%.3e s, wait %.3e s\n",
                report.total_seconds, report.compute_mean,
                report.transfer_mean, report.wait_mean);
  out << line;
  return out.str();
}

}  // namespace dbfs::obs
