#include "obs/doctor.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "comm/wire_format.hpp"

namespace dbfs::obs {

namespace {

// Classifier thresholds. Ratios are candidate/baseline; a regression
// signature must clear its own threshold while the competing explanations
// stay under theirs, which is what keeps the rankings disjoint on the
// golden scenarios (tests/test_doctor.cpp).
constexpr double kTransferJump = 1.2;   ///< β drift: transfer grew >= 20%
constexpr double kComputeFlat = 1.15;   ///< ... while compute stayed flat
constexpr double kBalanceFlat = 1.3;    ///< ... and imbalance stayed flat
constexpr double kImbalanceJump = 1.5;  ///< straggler: imbalance grew 50%
constexpr double kCodecRatioJump = 1.3; ///< codec: bytes ratio worsened 30%
constexpr double kSkewJump = 1.5;       ///< atlas: send/recv skew grew 50%
constexpr double kPairShareJump = 1.5;  ///< atlas: max-pair share grew 50%
constexpr double kPairShareFloor = 0.2; ///< ... and one pair owns >= 20%

double safe_ratio(double cand, double base) {
  if (base > 0.0) return cand / base;
  return cand > 0.0 ? std::numeric_limits<double>::infinity() : 1.0;
}

std::int64_t counter_of(const BenchRecord& r, const std::string& name) {
  const auto it = r.counters.find(name);
  return it == r.counters.end() ? 0 : it->second;
}

/// Rebuild the codec's own WireStats view from the record counters, so
/// the classifier reuses comm::WireStats's ratio definitions instead of
/// re-deriving them.
comm::WireStats wire_stats_of(const BenchRecord& r) {
  comm::WireStats s;
  s.raw_bytes = static_cast<std::uint64_t>(counter_of(r, "wire.bytes_before"));
  s.encoded_bytes =
      static_cast<std::uint64_t>(counter_of(r, "wire.bytes_after"));
  s.blocks_items = static_cast<std::uint64_t>(counter_of(r, "wire.blocks.items"));
  s.blocks_bitmap =
      static_cast<std::uint64_t>(counter_of(r, "wire.blocks.bitmap"));
  s.blocks_varint =
      static_cast<std::uint64_t>(counter_of(r, "wire.blocks.varint"));
  return s;
}

std::string fmt(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3g", v);
  return buf;
}

/// Per-level phase seconds folded over both records' level lists.
struct PhaseTotals {
  double compute = 0.0;
  double wait = 0.0;
  double transfer = 0.0;
};

PhaseTotals level_totals(const BenchRecord& r) {
  PhaseTotals t;
  for (const BenchLevelSplit& l : r.levels) {
    t.compute += l.compute_mean;
    t.wait += l.wait_mean;
    t.transfer += l.transfer_mean;
  }
  return t;
}

void push_contribution(std::vector<DoctorContribution>& out, int level,
                       std::string phase, double base, double cand) {
  if (base == 0.0 && cand == 0.0) return;
  DoctorContribution c;
  c.level = level;
  c.phase = std::move(phase);
  c.baseline_seconds = base;
  c.candidate_seconds = cand;
  c.delta_seconds = cand - base;
  out.push_back(std::move(c));
}

void align_contributions(const BenchRecord& baseline,
                         const BenchRecord& candidate, DoctorReport& report) {
  std::map<int, const BenchLevelSplit*> base_by_level;
  std::map<int, const BenchLevelSplit*> cand_by_level;
  for (const BenchLevelSplit& l : baseline.levels) base_by_level[l.level] = &l;
  for (const BenchLevelSplit& l : candidate.levels) cand_by_level[l.level] = &l;

  std::vector<int> levels;
  for (const auto& [lv, ignored] : base_by_level) levels.push_back(lv);
  for (const auto& [lv, ignored] : cand_by_level) {
    if (base_by_level.find(lv) == base_by_level.end()) levels.push_back(lv);
  }
  std::sort(levels.begin(), levels.end());

  static const BenchLevelSplit kEmpty;
  for (int lv : levels) {
    const auto bi = base_by_level.find(lv);
    const auto ci = cand_by_level.find(lv);
    const BenchLevelSplit& b = bi == base_by_level.end() ? kEmpty : *bi->second;
    const BenchLevelSplit& c = ci == cand_by_level.end() ? kEmpty : *ci->second;

    push_contribution(report.contributions, lv, "compute", b.compute_mean,
                      c.compute_mean);
    push_contribution(report.contributions, lv, "wait", b.wait_mean,
                      c.wait_mean);
    // Per-site transfer rows when either record carries the split (the
    // sites sum to transfer_mean, so shares never double-count); plain
    // "transfer" for pre-split baselines.
    if (b.sites.empty() && c.sites.empty()) {
      push_contribution(report.contributions, lv, "transfer", b.transfer_mean,
                        c.transfer_mean);
    } else {
      std::map<std::string, std::pair<double, double>> sites;
      for (const auto& [site, seconds] : b.sites) sites[site].first = seconds;
      for (const auto& [site, seconds] : c.sites) sites[site].second = seconds;
      for (const auto& [site, pair] : sites) {
        push_contribution(report.contributions, lv, site, pair.first,
                          pair.second);
      }
    }
  }

  // No per-level data on either side (metrics-only records): fall back to
  // the whole-run comm/comp split so the ranking is never empty.
  if (report.contributions.empty()) {
    push_contribution(report.contributions, -1, "compute",
                      baseline.comp_seconds_mean, candidate.comp_seconds_mean);
    push_contribution(report.contributions, -1, "comm",
                      baseline.comm_seconds_mean, candidate.comm_seconds_mean);
  }

  double total = 0.0;
  for (const DoctorContribution& c : report.contributions) {
    total += std::fabs(c.delta_seconds);
  }
  for (DoctorContribution& c : report.contributions) {
    c.share = total > 0.0 ? std::fabs(c.delta_seconds) / total : 0.0;
  }
  std::sort(report.contributions.begin(), report.contributions.end(),
            [](const DoctorContribution& a, const DoctorContribution& b) {
              return std::fabs(a.delta_seconds) > std::fabs(b.delta_seconds);
            });
}

void detect_config_drift(const BenchSetup& b, const BenchSetup& c,
                         DoctorReport& report) {
  auto differs = [&report](const char* field, const auto& x, const auto& y) {
    if (!(x == y)) report.config_drift.push_back(field);
  };
  differs("generator", b.generator, c.generator);
  differs("scale", b.scale, c.scale);
  differs("edge_factor", b.edge_factor, c.edge_factor);
  differs("graph_seed", b.graph_seed, c.graph_seed);
  differs("algorithm", b.algorithm, c.algorithm);
  differs("machine", b.machine, c.machine);
  differs("wire_format", b.wire_format, c.wire_format);
  differs("cores", b.cores, c.cores);
  differs("ranks", b.ranks, c.ranks);
  differs("threads_per_rank", b.threads_per_rank, c.threads_per_rank);
  // faults_enabled / fault_plan deliberately excluded: a fault-injection
  // experiment against a clean baseline is the expected use of the
  // doctor, and the fault classifiers read that evidence directly.
}

}  // namespace

const std::string& DoctorReport::top_cause() const {
  static const std::string kEmpty;
  return findings.empty() ? kEmpty : findings.front().cause;
}

DoctorReport diagnose(const BenchRecord& baseline,
                      const BenchRecord& candidate) {
  DoctorReport report;
  report.baseline_name = baseline.name;
  report.candidate_name = candidate.name;
  report.baseline_teps = baseline.harmonic_mean_teps;
  report.candidate_teps = candidate.harmonic_mean_teps;
  report.teps_ratio =
      safe_ratio(candidate.harmonic_mean_teps, baseline.harmonic_mean_teps);
  report.baseline_seconds = baseline.mean_seconds;
  report.candidate_seconds = candidate.mean_seconds;

  detect_config_drift(baseline.config, candidate.config, report);
  align_contributions(baseline, candidate, report);

  std::vector<DoctorFinding>& findings = report.findings;
  const bool wire_changed =
      baseline.config.wire_format != candidate.config.wire_format;

  // --- wire-format-change: an explicit codec policy switch explains any
  // byte/time shift by itself.
  if (wire_changed) {
    findings.push_back(
        {"wire-format-change", 0.95,
         "config wire_format changed " + baseline.config.wire_format +
             " -> " + candidate.config.wire_format +
             "; codec and byte-volume deltas follow from the policy switch"});
  }

  // --- config-drift: the records measure different experiments.
  if (report.config_drift.size() > (wire_changed ? 1u : 0u)) {
    std::string fields;
    for (const std::string& f : report.config_drift) {
      if (f == "wire_format") continue;
      if (!fields.empty()) fields += ", ";
      fields += f;
    }
    findings.push_back({"config-drift", 0.95,
                        "records differ in config (" + fields +
                            "); metric deltas are not comparable runs"});
  }

  // --- checkpoint-recovery-overhead: the candidate survived rank
  // failures; detection + replay time is the regression.
  const std::int64_t cand_failures =
      counter_of(candidate, "recover.rank_failures");
  const std::int64_t base_failures =
      counter_of(baseline, "recover.rank_failures");
  const bool recovery_fired = cand_failures > base_failures;
  if (recovery_fired) {
    const std::int64_t replayed =
        counter_of(candidate, "recover.replayed_levels");
    const std::int64_t checkpoints =
        counter_of(candidate, "recover.checkpoints");
    const auto levels = static_cast<double>(
        candidate.levels.empty() ? 1 : candidate.levels.size());
    std::string detail =
        std::to_string(cand_failures - base_failures) +
        " rank failure(s) survived (" + std::to_string(replayed) +
        " level(s) replayed, " + std::to_string(checkpoints) +
        " checkpoint(s), cadence " +
        fmt(static_cast<double>(checkpoints) / levels) +
        " per level); detection + restore + replay is the overhead";
    findings.push_back({"checkpoint-recovery-overhead", 0.9,
                        std::move(detail)});
  }

  // --- rollback-storm: SDC audits failed and forced rollback-replays;
  // the replayed windows (plus the restores) are the regression.
  const std::int64_t cand_rollbacks = counter_of(candidate, "sdc.rollbacks");
  const std::int64_t base_rollbacks = counter_of(baseline, "sdc.rollbacks");
  const bool rollback_fired = cand_rollbacks > base_rollbacks;
  if (rollback_fired) {
    const std::int64_t replayed =
        counter_of(candidate, "sdc.replayed_levels");
    const std::int64_t failures =
        counter_of(candidate, "sdc.audit_failures");
    const std::int64_t rejected =
        counter_of(candidate, "sdc.checkpoints_rejected");
    std::string detail =
        std::to_string(cand_rollbacks - base_rollbacks) +
        " audit-triggered rollback(s) (" + std::to_string(failures) +
        " failed audit(s), " + std::to_string(replayed) +
        " level(s) replayed";
    if (rejected > 0) {
      detail += ", " + std::to_string(rejected) +
                " corrupt checkpoint(s) scrubbed";
    }
    detail += "); restore + replay of the lost windows is the overhead";
    findings.push_back({"rollback-storm", 0.9, std::move(detail)});
  }

  // --- audit-overhead: the state-audit cadence itself costs compute —
  // audits ran (more than the baseline's) without any failing, so the
  // per-level scan + agreement allreduce is the only new work.
  const std::int64_t cand_audits = counter_of(candidate, "sdc.audits");
  const std::int64_t base_audits = counter_of(baseline, "sdc.audits");
  if (!rollback_fired && cand_audits > base_audits &&
      counter_of(candidate, "sdc.audit_failures") == 0) {
    const auto levels = static_cast<double>(
        candidate.levels.empty() ? 1 : candidate.levels.size());
    findings.push_back(
        {"audit-overhead", 0.8,
         std::to_string(cand_audits - base_audits) +
             " extra state audit(s) ran clean (cadence " +
             fmt(static_cast<double>(cand_audits) / levels) +
             " per level); the ABFT scan and its agreement allreduce are "
             "the added work"});
  }

  // Phase ratios for the machine-model and straggler signatures.
  const PhaseTotals base_t = level_totals(baseline);
  const PhaseTotals cand_t = level_totals(candidate);
  const bool have_levels =
      !baseline.levels.empty() && !candidate.levels.empty();
  const double transfer_ratio =
      have_levels ? safe_ratio(cand_t.transfer, base_t.transfer)
                  : safe_ratio(candidate.comm_seconds_mean,
                               baseline.comm_seconds_mean);
  const double compute_ratio =
      have_levels ? safe_ratio(cand_t.compute, base_t.compute)
                  : safe_ratio(candidate.comp_seconds_mean,
                               baseline.comp_seconds_mean);
  const double busy_imb_ratio = safe_ratio(candidate.imbalance.busy_imbalance,
                                           baseline.imbalance.busy_imbalance);
  const double comp_imb_ratio = safe_ratio(candidate.imbalance.comp_imbalance,
                                           baseline.imbalance.comp_imbalance);
  const double imb_ratio = std::max(busy_imb_ratio, comp_imb_ratio);

  // --- straggler-rank: per-rank balance collapsed; name the culprit.
  if (imb_ratio > kImbalanceJump) {
    int rank = candidate.imbalance.straggler_ranks.empty()
                   ? -1
                   : candidate.imbalance.straggler_ranks.front();
    if (rank < 0) {
      // Fall back to the modal per-level straggler.
      std::map<int, int> votes;
      for (const BenchLevelSplit& l : candidate.levels) {
        ++votes[l.straggler_rank];
      }
      int best = -1;
      for (const auto& [r, v] : votes) {
        if (best == -1 || v > votes[best]) best = r;
      }
      rank = best;
    }
    findings.push_back(
        {"straggler-rank", 0.85,
         "busy/compute imbalance grew " + fmt(imb_ratio) +
             "x (busy " + fmt(baseline.imbalance.busy_imbalance) + " -> " +
             fmt(candidate.imbalance.busy_imbalance) +
             "); every level waits on rank " + std::to_string(rank)});
  }

  // --- network-beta-drift: transfers uniformly slower with compute and
  // balance flat — the α–β machine model itself moved.
  if (transfer_ratio > kTransferJump && compute_ratio < kComputeFlat &&
      imb_ratio < kBalanceFlat) {
    findings.push_back(
        {"network-beta-drift", 0.9,
         "per-level transfer seconds grew " + fmt(transfer_ratio) +
             "x while compute grew " + fmt(compute_ratio) +
             "x and imbalance " + fmt(imb_ratio) +
             "x — uniform bandwidth slowdown (machine-model beta/alpha "
             "drift)"});
  }

  // --- codec-raw-fallback: same compressing policy, but the blocks
  // stopped compressing (bytes ratio worsened / blocks shifted to raw
  // items).
  if (!wire_changed) {
    const comm::WireStats base_wire = wire_stats_of(baseline);
    const comm::WireStats cand_wire = wire_stats_of(candidate);
    if (base_wire.raw_bytes > 0 && cand_wire.raw_bytes > 0) {
      const double base_ratio = base_wire.compression_ratio();
      const double cand_ratio = cand_wire.compression_ratio();
      const double base_item_share = base_wire.raw_block_share();
      const double cand_item_share = cand_wire.raw_block_share();
      if (cand_ratio > base_ratio * kCodecRatioJump ||
          (cand_item_share > base_item_share + 0.3 && cand_ratio > 0.8)) {
        findings.push_back(
            {"codec-raw-fallback", 0.8,
             "encoded/raw byte ratio worsened " + fmt(base_ratio) + " -> " +
                 fmt(cand_ratio) + " (raw-item block share " +
                 fmt(base_item_share) + " -> " + fmt(cand_item_share) +
                 "); the auto codec is falling back to raw blocks"});
      }
    }
  }

  // --- traffic-skew / hotspot-rank: the communication atlas recorded a
  // lopsided traffic matrix. Only active when both records carry the
  // schema-additive atlas block (pre-atlas baselines stay undiagnosed
  // rather than mis-diagnosed).
  if (baseline.atlas.present && candidate.atlas.present) {
    const double row_skew_ratio =
        safe_ratio(candidate.atlas.row_skew, baseline.atlas.row_skew);
    const double col_skew_ratio =
        safe_ratio(candidate.atlas.col_skew, baseline.atlas.col_skew);
    const double skew_ratio = std::max(row_skew_ratio, col_skew_ratio);
    if (skew_ratio > kSkewJump) {
      findings.push_back(
          {"traffic-skew", 0.85,
           "per-rank traffic skew grew " + fmt(skew_ratio) + "x (send " +
               fmt(baseline.atlas.row_skew) + " -> " +
               fmt(candidate.atlas.row_skew) + ", receive " +
               fmt(baseline.atlas.col_skew) + " -> " +
               fmt(candidate.atlas.col_skew) +
               "x mean); the communication matrix became lopsided, so "
               "collectives pace on the overloaded rank"});
    }
    const double pair_ratio = safe_ratio(candidate.atlas.max_pair_share,
                                         baseline.atlas.max_pair_share);
    const bool pair_concentrated =
        candidate.atlas.max_pair_share > kPairShareFloor &&
        pair_ratio > kPairShareJump;
    if ((skew_ratio > kSkewJump || pair_concentrated) &&
        (candidate.atlas.hotspot_rank >= 0 ||
         candidate.atlas.incast_rank >= 0)) {
      const int hotspot = candidate.atlas.hotspot_rank >= 0
                              ? candidate.atlas.hotspot_rank
                              : candidate.atlas.incast_rank;
      std::string detail =
          "atlas attributes the concentration to rank " +
          std::to_string(hotspot) + " (sends " +
          fmt(candidate.atlas.row_skew) + "x the mean volume";
      if (candidate.atlas.incast_rank >= 0 &&
          candidate.atlas.incast_rank != hotspot) {
        detail += "; incast onto rank " +
                  std::to_string(candidate.atlas.incast_rank);
      } else if (candidate.atlas.incast_rank == hotspot) {
        detail += "; also the incast target";
      }
      detail += ", max pair share " + fmt(candidate.atlas.max_pair_share) +
                ")";
      findings.push_back({"hotspot-rank", 0.8, std::move(detail)});
    }
  }

  // --- frontier-shape-change: the traversal structure itself changed.
  if (have_levels && baseline.levels.size() != candidate.levels.size()) {
    findings.push_back(
        {"frontier-shape-change", 0.5,
         "level count changed " + std::to_string(baseline.levels.size()) +
             " -> " + std::to_string(candidate.levels.size()) +
             "; the traversal explored a different frontier shape"});
  }

  // Confidence interactions: an explicit config change explains the rest;
  // a survived failure explains balance/transfer shifts it causes.
  const bool config_explains =
      wire_changed || report.config_drift.size() > (wire_changed ? 1u : 0u);
  for (DoctorFinding& f : findings) {
    if (config_explains && f.cause != "wire-format-change" &&
        f.cause != "config-drift" &&
        f.cause != "checkpoint-recovery-overhead") {
      f.confidence = std::min(f.confidence, 0.5);
    }
    if ((recovery_fired || rollback_fired) &&
        (f.cause == "network-beta-drift" || f.cause == "straggler-rank" ||
         f.cause == "traffic-skew" || f.cause == "hotspot-rank" ||
         f.cause == "frontier-shape-change")) {
      f.confidence = std::min(f.confidence, 0.6);
    }
  }

  if (findings.empty()) {
    std::string detail = "no known signature matched";
    if (!report.contributions.empty()) {
      const DoctorContribution& top = report.contributions.front();
      detail += "; largest delta is " + top.phase + " at level " +
                std::to_string(top.level) + " (" +
                fmt(top.delta_seconds) + "s, " +
                fmt(top.share * 100.0) + "% of total)";
    }
    findings.push_back({"unattributed", 0.2, std::move(detail)});
  }

  std::stable_sort(findings.begin(), findings.end(),
                   [](const DoctorFinding& a, const DoctorFinding& b) {
                     return a.confidence > b.confidence;
                   });
  return report;
}

std::string format_doctor_report(const DoctorReport& r) {
  std::ostringstream out;
  out << "bench_doctor: " << r.candidate_name << " vs " << r.baseline_name
      << "\n";
  out << "  harmonic_mean_teps " << fmt(r.baseline_teps) << " -> "
      << fmt(r.candidate_teps) << " (ratio " << fmt(r.teps_ratio)
      << "); mean_seconds " << fmt(r.baseline_seconds) << " -> "
      << fmt(r.candidate_seconds) << "\n";
  if (!r.config_drift.empty()) {
    out << "  config drift:";
    for (const std::string& f : r.config_drift) out << ' ' << f;
    out << "\n";
  }
  out << "  diagnosis (ranked):\n";
  for (std::size_t i = 0; i < r.findings.size(); ++i) {
    const DoctorFinding& f = r.findings[i];
    out << "    " << (i + 1) << ". " << f.cause << " (confidence "
        << fmt(f.confidence) << "): " << f.detail << "\n";
  }
  out << "  top contributions:\n";
  const std::size_t n = std::min<std::size_t>(r.contributions.size(), 5);
  for (std::size_t i = 0; i < n; ++i) {
    const DoctorContribution& c = r.contributions[i];
    out << "    level " << c.level << ' ' << c.phase << ": "
        << (c.delta_seconds >= 0.0 ? "+" : "") << fmt(c.delta_seconds)
        << "s (" << fmt(c.share * 100.0) << "% of |delta|, "
        << fmt(c.baseline_seconds) << " -> " << fmt(c.candidate_seconds)
        << ")\n";
  }
  return out.str();
}

namespace {

void write_escaped(std::ostream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

}  // namespace

void write_doctor_json(std::ostream& out, const DoctorReport& r) {
  const auto saved_precision = out.precision();
  out.precision(std::numeric_limits<double>::max_digits10);
  out << "{\"doctor\":{\"baseline\":";
  write_escaped(out, r.baseline_name);
  out << ",\"candidate\":";
  write_escaped(out, r.candidate_name);
  out << ",\"baseline_teps\":" << r.baseline_teps
      << ",\"candidate_teps\":" << r.candidate_teps
      << ",\"teps_ratio\":" << r.teps_ratio
      << ",\"baseline_seconds\":" << r.baseline_seconds
      << ",\"candidate_seconds\":" << r.candidate_seconds
      << ",\"config_drift\":[";
  for (std::size_t i = 0; i < r.config_drift.size(); ++i) {
    if (i > 0) out << ',';
    write_escaped(out, r.config_drift[i]);
  }
  out << "],\"findings\":[";
  for (std::size_t i = 0; i < r.findings.size(); ++i) {
    const DoctorFinding& f = r.findings[i];
    if (i > 0) out << ',';
    out << "{\"cause\":";
    write_escaped(out, f.cause);
    out << ",\"confidence\":" << f.confidence << ",\"detail\":";
    write_escaped(out, f.detail);
    out << "}";
  }
  out << "],\"contributions\":[";
  for (std::size_t i = 0; i < r.contributions.size(); ++i) {
    const DoctorContribution& c = r.contributions[i];
    if (i > 0) out << ',';
    out << "{\"level\":" << c.level << ",\"phase\":";
    write_escaped(out, c.phase);
    out << ",\"baseline_seconds\":" << c.baseline_seconds
        << ",\"candidate_seconds\":" << c.candidate_seconds
        << ",\"delta_seconds\":" << c.delta_seconds
        << ",\"share\":" << c.share << "}";
  }
  out << "]}}\n";
  out.precision(saved_precision);
}

void save_doctor_report(const std::string& path, const DoctorReport& report) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("doctor: cannot write " + path);
  }
  write_doctor_json(out, report);
}

std::string doctor_report_filename(const std::string& candidate_name) {
  return "DOCTOR_" + candidate_name + ".json";
}

}  // namespace dbfs::obs
