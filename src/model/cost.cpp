#include "model/cost.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace dbfs::model {

namespace {

double log2_ceil(int g) {
  return g <= 1 ? 1.0 : std::ceil(std::log2(static_cast<double>(g)));
}

// Empirical constants of the local model; shared by all machines (machine
// differences enter through alpha/beta/compute_scale). See DESIGN.md §5.
constexpr double kPackFactor = 2.0;   // owner calc + buffer write per word
constexpr double kStackFactor = 2.0;  // push + later merge of NS pieces
constexpr double kHeapFactor = 2.5;   // per-flop heap sift constant
                                      // (branch-missy compare/swap chains)
constexpr double kSpaFactor = 1.5;    // per-flop SPA streaming constant
constexpr double kSortFactor = 1.5;   // SPA output index sort constant
constexpr double kMergeFactor = 2.0;  // fold-side merge of received runs
constexpr double kCodecFactor = 2.0;  // per-word varint/bitmap shift+mask
                                      // (branchy byte-at-a-time loops)

}  // namespace

double cost_alltoallv(const MachineModel& m, int group,
                      std::size_t max_rank_bytes) {
  return static_cast<double>(group) * m.alpha_net +
         static_cast<double>(max_rank_bytes) * m.a2a_beta(group);
}

const char* to_string(AllgatherAlgo algo) {
  switch (algo) {
    case AllgatherAlgo::kRing:
      return "ring";
    case AllgatherAlgo::kRecursiveDoubling:
      return "recursive-doubling";
    case AllgatherAlgo::kBruck:
      return "bruck";
    case AllgatherAlgo::kAuto:
      return "auto";
  }
  return "?";
}

double cost_allgatherv(const MachineModel& m, int group,
                       std::size_t bytes_per_rank_result,
                       AllgatherAlgo algo) {
  const double bytes = static_cast<double>(bytes_per_rank_result);
  switch (algo) {
    case AllgatherAlgo::kRing:
      // g latency steps, every byte moved once per hop on average:
      // bandwidth-optimal for large results, latency-bound for small.
      return static_cast<double>(group) * m.alpha_net +
             bytes * m.ag_beta(group);
    case AllgatherAlgo::kRecursiveDoubling:
      // log2(g) exchange rounds of doubling payloads; the non-contiguous
      // receive layout costs an extra fraction of bandwidth.
      return log2_ceil(group) * m.alpha_net +
             bytes * m.ag_beta(group) * 1.25;
    case AllgatherAlgo::kBruck:
      // log-latency like recursive doubling, plus a final local rotation
      // (modelled as a 1.5x bandwidth factor).
      return log2_ceil(group) * m.alpha_net +
             bytes * m.ag_beta(group) * 1.5;
    case AllgatherAlgo::kAuto:
      return std::min(
          {cost_allgatherv(m, group, bytes_per_rank_result,
                           AllgatherAlgo::kRing),
           cost_allgatherv(m, group, bytes_per_rank_result,
                           AllgatherAlgo::kRecursiveDoubling),
           cost_allgatherv(m, group, bytes_per_rank_result,
                           AllgatherAlgo::kBruck)});
  }
  return 0.0;
}

double cost_allreduce(const MachineModel& m, int group, std::size_t bytes) {
  return 2.0 * log2_ceil(group) * m.alpha_net +
         2.0 * static_cast<double>(bytes) * m.beta_net;
}

double cost_broadcast(const MachineModel& m, int group, std::size_t bytes) {
  return log2_ceil(group) *
         (m.alpha_net + static_cast<double>(bytes) * m.beta_net);
}

double cost_gatherv(const MachineModel& m, int group, std::size_t total_bytes) {
  return static_cast<double>(group) * m.alpha_net +
         static_cast<double>(total_bytes) * m.beta_net;
}

double cost_p2p(const MachineModel& m, std::size_t bytes) {
  return m.alpha_net + static_cast<double>(bytes) * m.beta_net;
}

double cost_chunked_sends(const MachineModel& m, double messages,
                          double bytes, int ndests) {
  // Per-message cost grows with the peer count: MPI message matching
  // against posted-receive/unexpected queues whose length scales with the
  // number of communicating partners. This is what makes the unaggregated
  // baselines fall further behind as concurrency rises (§6's 2.72x ->
  // 4.13x progression), on top of paying latency per chunk at all.
  const double matching = 1.0 + 0.25 * log2_ceil(ndests);
  return messages * m.alpha_net * matching + bytes * m.a2a_beta(ndests);
}

double cost_wire_codec(const MachineModel& m, std::size_t raw_bytes,
                       std::size_t encoded_bytes, int threads) {
  const double words =
      static_cast<double>(raw_bytes + encoded_bytes) / kWordBytes;
  double serial = words * m.beta_local * kCodecFactor;
  serial *= m.compute_scale;
  const int t = std::max(1, threads);
  return serial / (static_cast<double>(t) * m.thread_efficiency(t));
}

double cost_failure_detection(const MachineModel& m, int retries,
                              double backoff_base, double backoff_cap) {
  double total = 0.0;
  for (int k = 0; k < retries; ++k) {
    const int shift = std::min(k, 52);
    const double pause =
        backoff_base * static_cast<double>(std::uint64_t{1} << shift);
    total += m.alpha_net + std::min(pause, backoff_cap);
  }
  return total;
}

double cost_1d_local(const MachineModel& m, const Work1D& w) {
  const double owned_bytes = static_cast<double>(w.n_local) * kWordBytes;
  const double alpha_owned = m.alpha_local(owned_bytes);

  double serial =
      // adjacency pointer lookups: one irregular reference per frontier
      // vertex into the offsets array
      static_cast<double>(w.frontier_vertices) * alpha_owned +
      // streaming the adjacency blocks
      static_cast<double>(w.edges_scanned) * m.beta_local +
      // packing candidates into per-destination buffers
      static_cast<double>(w.words_packed) * m.beta_local * kPackFactor +
      // receive side: distance check per candidate, irregular into d[]
      static_cast<double>(w.candidates_received) * alpha_owned +
      // stack pushes and the NS merge
      static_cast<double>(w.newly_visited) * m.beta_local * kStackFactor +
      // baseline variants' extra constant per edge (PBGL property maps...)
      static_cast<double>(w.edges_scanned) * w.extra_per_edge_seconds;

  serial *= m.compute_scale;
  const int t = std::max(1, w.threads);
  return serial / (static_cast<double>(t) * m.thread_efficiency(t));
}

double cost_2d_local(const MachineModel& m, const Work2D& w) {
  const double x_bytes = static_cast<double>(w.x_dim) * kWordBytes;
  const double out_bytes = static_cast<double>(w.out_dim) * kWordBytes;
  const double owned_bytes = static_cast<double>(w.n_local) * kWordBytes;
  const double flops = static_cast<double>(w.spmsv_flops);

  double serial =
      // column lookups: one irregular reference per frontier nonzero into
      // the DCSC column index (working set scales with the input block)
      static_cast<double>(w.x_nnz) * m.alpha_local(x_bytes) +
      // streaming the selected columns' row ids
      flops * m.beta_local;

  if (w.heap_backend) {
    const double k = std::max<double>(2.0, static_cast<double>(w.x_nnz));
    serial += flops * m.beta_local * kHeapFactor * std::log2(k);
  } else {
    // SPA: the *first* accumulation into each distinct output row is an
    // irregular reference into the dense accumulator sized by the output
    // block — §5.2's αL(n/pr) term, the reason 2D computation outweighs
    // 1D computation. Subsequent accumulations hit recently-touched
    // lines and stream; this amortization is why the SPA beats the heap
    // while the sub-problems are dense (Fig 3's low-concurrency side).
    serial += static_cast<double>(w.output_nnz) * m.alpha_local(out_bytes) +
              flops * m.beta_local * kSpaFactor;
    const double out = static_cast<double>(w.output_nnz);
    if (out > 1.0) {
      serial += out * std::log2(out) * m.beta_local * kSortFactor;
    }
  }

  // Fold side: merge received runs and filter against the local parents.
  serial +=
      static_cast<double>(w.fold_received) * m.beta_local * kMergeFactor +
      static_cast<double>(w.fold_received) * m.alpha_local(owned_bytes);

  serial *= m.compute_scale;
  const int t = std::max(1, w.threads);
  return serial / (static_cast<double>(t) * m.thread_efficiency(t));
}

double cost_2d_transpose_scan(const MachineModel& m,
                              const WorkTranspose2D& w) {
  // One streamed read per stored nonzero plus an irregular probe into the
  // frontier bitmask (x_dim bits).
  const double mask_bytes = static_cast<double>(w.x_dim) / 8.0;
  double serial =
      static_cast<double>(w.nnz_scanned) *
          (m.beta_local + m.alpha_local(std::max(mask_bytes, 64.0))) +
      static_cast<double>(w.output_nnz) * m.beta_local * 2.0;
  serial *= m.compute_scale;
  const int t = std::max(1, w.threads);
  return serial / (static_cast<double>(t) * m.thread_efficiency(t));
}

double cost_thread_barriers(const MachineModel& m, int threads, int barriers) {
  if (threads <= 1) return 0.0;
  return static_cast<double>(barriers) * m.thread_barrier_seconds *
         (1.0 + 0.1 * static_cast<double>(threads));
}

double cost_sdc_audit(const MachineModel& m, const WorkAudit& w) {
  const double global_bytes = static_cast<double>(w.n_global) * kWordBytes;
  double serial =
      // checksum pass: stream the shard's (parent, level) words and fold
      // them into the running Fletcher sums
      static_cast<double>(w.shard_vertices) * 2.0 * m.beta_local +
      // tree-property probe: one irregular level[parent[v]] read per
      // visited vertex, working set = the full distance array
      static_cast<double>(w.visited_vertices) *
          m.alpha_local(std::max(global_bytes, 64.0)) +
      // sieve scan: stream the visited-bitmap words
      static_cast<double>(w.sieve_words) * m.beta_local;
  serial *= m.compute_scale;
  const int t = std::max(1, w.threads);
  return serial / (static_cast<double>(t) * m.thread_efficiency(t));
}

double cost_2d_bottom_up(const MachineModel& m, const WorkBottomUp& w) {
  const double support_bytes = static_cast<double>(w.x_dim) * kWordBytes;
  double serial =
      // per probe: streamed row id + irregular test against the gathered
      // frontier support (working set = the row block's frontier piece)
      static_cast<double>(w.probes) *
          (m.beta_local + m.alpha_local(std::max(support_bytes, 64.0))) +
      // per candidate column: one DCSC column-header touch even when the
      // very first probe hits (the latency floor dirop_beta guards)
      static_cast<double>(w.candidates) * m.beta_local +
      // per discovered parent: stack push into the transpose buffer
      static_cast<double>(w.output_nnz) * m.beta_local * kStackFactor;
  serial *= m.compute_scale;
  const int t = std::max(1, w.threads);
  return serial / (static_cast<double>(t) * m.thread_efficiency(t));
}

double dirop_alpha(const MachineModel& m) {
  // Per top-down edge: stream the row id, pack a candidate word into the
  // fold buffer, ship one word through the all-to-all. Per bottom-up
  // probe: stream the row id and test the frontier bit. The ratio is the
  // modelled break-even of "engage when m_f > m_u / alpha"; clamped to a
  // sane Beamer-style band so a degenerate preset cannot disable the
  // heuristic outright.
  const double per_edge_td =
      m.beta_local * (1.0 + kPackFactor) * m.compute_scale +
      kWordBytes * m.beta_net;
  const double per_edge_bu = 2.0 * m.beta_local * m.compute_scale;
  return std::clamp(per_edge_td / per_edge_bu, 4.0, 64.0);
}

double dirop_beta(const MachineModel& m) {
  // Bottom-up charges every unvisited vertex a column-header touch even
  // when its first probe hits; top-down only ever touches frontier
  // adjacencies. The guard n/beta keeps bottom-up engaged only while the
  // frontier is broad enough to amortize that floor, scaled by how much
  // the machine's irregular-reference latency (DRAM-resident support)
  // exceeds its streaming cost.
  const double dram_alpha =
      m.caches.empty() ? m.beta_local
                       : m.caches.back().latency_seconds;
  const double ratio = dram_alpha / std::max(m.beta_local, 1e-12);
  return std::clamp(24.0 * ratio / 16.0, 8.0, 96.0);
}

}  // namespace dbfs::model
