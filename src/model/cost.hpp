// Cost functions turning *measured* per-rank work and traffic into
// simulated seconds, following paper §5.
//
// Network costs follow §5's forms: an all-to-all among g ranks costs
// g·αN + V·βN,a2a(g) for a per-rank volume of V bytes; an allgather costs
// g·αN + R·βN,ag(g) where R is the bytes each rank ends up holding.
//
// Local costs follow §5.1 (1D: per-edge streaming plus irregular distance
// checks against the n/p-sized owned range) and §5.2 (2D: SpMSV flops
// plus irregular references into the n/pr- and n/pc-sized vector blocks,
// the larger working sets that make 2D computation heavier).
#pragma once

#include <cstddef>

#include "model/machine.hpp"
#include "util/types.hpp"

namespace dbfs::model {

inline constexpr double kWordBytes = 8.0;

// ---------- network ----------

double cost_alltoallv(const MachineModel& m, int group,
                      std::size_t max_rank_bytes);

/// Allgather implementation (paper §7, "interprocessor collective
/// communication optimization"): real MPI libraries switch algorithms by
/// message size and communicator shape; the expand phase's cost depends
/// heavily on that choice at scale.
enum class AllgatherAlgo {
  kRing,               ///< g-1 latency steps, bandwidth-optimal (default;
                       ///< the calibrated behavior of the figures)
  kRecursiveDoubling,  ///< ceil(log2 g) steps, non-contiguous penalty
  kBruck,              ///< log-latency for tiny payloads, extra copies
  kAuto,               ///< per-call minimum of the above (ideal switcher)
};

const char* to_string(AllgatherAlgo algo);

double cost_allgatherv(const MachineModel& m, int group,
                       std::size_t bytes_per_rank_result,
                       AllgatherAlgo algo = AllgatherAlgo::kRing);
double cost_allreduce(const MachineModel& m, int group, std::size_t bytes);
double cost_broadcast(const MachineModel& m, int group, std::size_t bytes);
/// Rooted gather: the root's ingest is the bottleneck.
double cost_gatherv(const MachineModel& m, int group, std::size_t total_bytes);
double cost_p2p(const MachineModel& m, std::size_t bytes);

/// Unaggregated point-to-point traffic (reference-code / PBGL style):
/// `messages` individually-latencied sends carrying `bytes` in total,
/// contending like an all-to-all among `ndests` destinations. Both are
/// doubles because callers price *mean per-rank* volumes, which are
/// fractional on high-diameter levels (fewer messages than ranks).
double cost_chunked_sends(const MachineModel& m, double messages,
                          double bytes, int ndests);

/// Wire-format codec work (src/comm/): one streaming pass over the raw
/// items plus one over the encoded bytes, charged at the local streaming
/// bandwidth βL — compression buys network bytes with priced CPU time,
/// never free time.
double cost_wire_codec(const MachineModel& m, std::size_t raw_bytes,
                       std::size_t encoded_bytes, int threads = 1);

/// Time survivors spend discovering a dead rank: the full retry budget of
/// the transient-fault model — `retries` re-issues, each one network
/// latency plus the capped exponential backoff — burned with no answer.
/// This prices ULFM-style revoke detection with the same constants the
/// FaultPlan uses for recoverable failures, so a fail-stop death costs
/// exactly what giving up on a flaky collective would.
double cost_failure_detection(const MachineModel& m, int retries,
                              double backoff_base, double backoff_cap);

// ---------- local work ----------

/// One rank's share of one 1D BFS level (Algorithm 2 steps 13–28).
struct Work1D {
  eid_t frontier_vertices = 0;   ///< |FS| processed by this rank
  eid_t edges_scanned = 0;       ///< adjacencies enumerated
  eid_t words_packed = 0;        ///< words written into send buffers
  eid_t candidates_received = 0; ///< words unpacked + distance-checked
  vid_t newly_visited = 0;       ///< vertices appended to NS
  vid_t n_local = 0;             ///< owned vertices (random-access set)
  int threads = 1;
  double extra_per_edge_seconds = 0.0;  ///< baseline-implementation overhead
};
double cost_1d_local(const MachineModel& m, const Work1D& w);

/// One rank's share of one 2D BFS level (Algorithm 3 lines 5–11).
struct Work2D {
  eid_t spmsv_flops = 0;     ///< nonzeros touched in the local multiply
  vid_t x_nnz = 0;           ///< gathered frontier nonzeros (input)
  vid_t output_nnz = 0;      ///< local SpMSV output entries
  vid_t fold_received = 0;   ///< entries merged after the fold exchange
  vid_t x_dim = 0;           ///< input block length (n/pr per §5.2)
  vid_t out_dim = 0;         ///< output block length (n/pc per §5.2)
  vid_t n_local = 0;         ///< owned vector elements (parents update set)
  bool heap_backend = false; ///< heap pays a log factor; SPA pays dense
                             ///< working-set references + an output sort
  int threads = 1;
};
double cost_2d_local(const MachineModel& m, const Work2D& w);

/// Transpose-product scan over a stored block (triangular storage, §7):
/// every stored nonzero is streamed and its row id probed against the
/// frontier mask — an irregular reference into an x_dim-sized bit array.
struct WorkTranspose2D {
  eid_t nnz_scanned = 0;
  vid_t output_nnz = 0;
  vid_t x_dim = 0;      ///< mask length (input block size)
  int threads = 1;
};
double cost_2d_transpose_scan(const MachineModel& m,
                              const WorkTranspose2D& w);

/// Per-level fixed intra-node overhead of the hybrid codes: `barriers`
/// thread barriers (Algorithm 2 has four per level).
double cost_thread_barriers(const MachineModel& m, int threads, int barriers);

/// One rank's share of one ABFT state audit (src/bfs/audit.*): a
/// streaming re-checksum pass over the rank's (parent, level) shard, an
/// irregular tree-property probe per visited vertex (level[parent[v]]
/// reads against the full distance array), and a streamed scan of the
/// rank's sender-side sieve words. Audited runs pay this per cadence
/// point, which is what the audit-cadence ablation trades against
/// rollback depth.
struct WorkAudit {
  vid_t shard_vertices = 0;       ///< owned (parent, level) entries scanned
  vid_t visited_vertices = 0;     ///< owned entries needing the tree probe
  std::uint64_t sieve_words = 0;  ///< visited-bitmap words streamed
  vid_t n_global = 0;             ///< distance-array size (probe working set)
  int threads = 1;
};
double cost_sdc_audit(const MachineModel& m, const WorkAudit& w);

// ---------- direction optimization ----------

/// One rank's share of one *bottom-up* 2D level: the early-exit probe
/// scan of spmsv_bottom_up over the local DCSC blocks. Per probe, a
/// streamed read of the stored row id plus an irregular test against the
/// gathered frontier support (x_dim entries); per produced parent, a
/// stack push. Structurally a transpose scan, but priced separately
/// because the probe count is the *early-exit* count — the quantity the
/// direction heuristic trades against top-down flops.
struct WorkBottomUp {
  eid_t probes = 0;         ///< entries examined before early exits
  vid_t candidates = 0;     ///< unvisited columns still being probed
  vid_t output_nnz = 0;     ///< parents found this level
  vid_t x_dim = 0;          ///< frontier-support length (row-block size)
  int threads = 1;
};
double cost_2d_bottom_up(const MachineModel& m, const WorkBottomUp& w);

/// Model-derived Beamer thresholds, used when the caller passes
/// alpha/beta <= 0 ("price the switch by the machine model" mode).
/// dirop_alpha prices how many times more expensive one top-down edge is
/// (stream + pack into fold buffers + ship a candidate word through the
/// all-to-all) than one bottom-up probe (stream + frontier test), so
/// "engage when m_f > m_u / alpha" compares modelled work, not counts.
double dirop_alpha(const MachineModel& m);
/// dirop_beta sizes the frontier-breadth guard n/beta: bottom-up pays a
/// fixed per-unvisited-vertex latency (the irregular frontier probe), so
/// it stays profitable only while the frontier is broad enough that the
/// per-edge savings dominate that latency floor.
double dirop_beta(const MachineModel& m);

}  // namespace dbfs::model
