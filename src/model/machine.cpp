#include "model/machine.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dbfs::model {

double MachineModel::alpha_local(double bytes) const {
  if (caches.empty()) return beta_local;
  if (bytes <= caches.front().capacity_bytes) {
    return caches.front().latency_seconds;
  }
  // Piecewise log-linear interpolation between levels: a working set
  // slightly bigger than L2 still mostly hits L2, so a hard step would
  // overstate the cliff. The last level (DRAM) is flat beyond capacity.
  for (std::size_t i = 0; i + 1 < caches.size(); ++i) {
    const CacheLevel& lo = caches[i];
    const CacheLevel& hi = caches[i + 1];
    if (bytes <= hi.capacity_bytes) {
      const double t = (std::log(bytes) - std::log(lo.capacity_bytes)) /
                       (std::log(hi.capacity_bytes) -
                        std::log(lo.capacity_bytes));
      return lo.latency_seconds +
             t * (hi.latency_seconds - lo.latency_seconds);
    }
  }
  const CacheLevel& dram = caches.back();
  return dram.latency_seconds *
         (1.0 + tlb_growth * std::log2(bytes / dram.capacity_bytes));
}

double MachineModel::a2a_beta(int g) const {
  const double participants = std::max(1, g);
  return beta_net * a2a_coeff * std::pow(participants, a2a_exponent);
}

double MachineModel::ag_beta(int g) const {
  const double participants = std::max(1, g);
  return beta_net * ag_coeff * std::pow(participants, ag_exponent);
}

double MachineModel::thread_efficiency(int t) const {
  if (t <= 1) return 1.0;
  return 1.0 / (1.0 + thread_efficiency_sigma * static_cast<double>(t - 1));
}

MachineModel franklin() {
  MachineModel m;
  m.name = "franklin";
  // 2.3 GHz quad-core Opteron Budapest; DDR2-800, 12.8 GB/s per socket.
  m.beta_local = 2.5e-9;  // ~3.2 GB/s streamed per core (socket shared by 4)
  m.caches = {
      {64.0 * 1024, 1.3e-9},          // L1d 64 KB
      {512.0 * 1024, 6.5e-9},         // L2 512 KB
      {2.0 * 1024 * 1024, 1.6e-8},    // L3 2 MB shared
      // Working sets a few times L3 are effectively DRAM-bound; beyond
      // this capacity alpha_local is flat at the DRAM figure.
      {16.0 * 1024 * 1024, 1.3e-7},   // DRAM, irregular (incl. TLB)
  };
  m.compute_scale = 1.0;
  // SeaStar2 3D torus; MPI latency 4.5–8.5 µs (§6), HT2 6.4 GB/s per node.
  m.alpha_net = 7.0e-6;
  m.beta_net = 6.25e-10;  // ~1.6 GB/s per core share of injection
  m.nic_contention = 0.4;
  m.a2a_coeff = 0.5;
  m.a2a_exponent = 1.0 / 3.0;  // torus bisection: p^(2/3) aggregate
  // Allgather replicates its result through every participant; measured
  // XT4 allgathers are *more* expensive per received byte than a2a at
  // these group sizes (the paper's Table 1 shows expand > fold even at
  // equal volumes), hence the larger coefficient.
  m.ag_coeff = 4.5;
  m.ag_exponent = 0.0;
  m.cores_per_node = 4;
  m.thread_efficiency_sigma = 0.12;
  // Includes OpenMP fork/join per region, not just the barrier itself.
  m.thread_barrier_seconds = 6.0e-6;
  return m;
}

MachineModel hopper() {
  MachineModel m;
  m.name = "hopper";
  // 2.1 GHz Magny-Cours: notably faster integer pipeline and bigger L3,
  // but Gemini is shared by two 24-core nodes — per-core network share
  // regressed relative to Franklin (the paper's §6 observation).
  m.beta_local = 2.0e-9;
  m.caches = {
      {64.0 * 1024, 1.2e-9},
      {512.0 * 1024, 5.5e-9},
      {6.0 * 1024 * 1024, 1.5e-8},    // L3 6 MB per die
      {48.0 * 1024 * 1024, 1.05e-7},  // DRAM (flat beyond)
  };
  m.compute_scale = 0.6;
  m.alpha_net = 1.5e-6;  // Gemini latency is much lower than SeaStar's
  m.beta_net = 2.4e-9;   // ~0.42 GB/s per core share (9.8 GB/s / 2 nodes)
  m.nic_contention = 0.06;  // 24 flat ranks share one Gemini port
  m.a2a_coeff = 0.6;
  m.a2a_exponent = 0.36;  // worse contention scaling than the XT4
  m.ag_coeff = 1.0;
  m.ag_exponent = 0.0;
  m.cores_per_node = 24;
  m.thread_efficiency_sigma = 0.08;  // NUMA-aware 6-way threading
  m.thread_barrier_seconds = 5.0e-6;
  return m;
}

MachineModel carver() {
  MachineModel m;
  m.name = "carver";
  // Dual quad-core Nehalem-EP, QDR InfiniBand fat tree.
  m.beta_local = 1.5e-9;
  m.caches = {
      {32.0 * 1024, 1.0e-9},
      {256.0 * 1024, 4.0e-9},
      {8.0 * 1024 * 1024, 1.6e-8},
      {64.0 * 1024 * 1024, 9.0e-8},   // DRAM (flat beyond)
  };
  m.compute_scale = 0.55;
  m.alpha_net = 2.0e-6;
  m.beta_net = 2.0e-9;  // ~0.5 GB/s per core share of QDR
  m.nic_contention = 0.2;
  m.a2a_coeff = 1.0;
  m.a2a_exponent = 0.1;  // fat tree: near-full bisection
  m.ag_coeff = 1.5;
  m.ag_exponent = 0.05;
  m.cores_per_node = 8;
  m.thread_efficiency_sigma = 0.07;
  m.thread_barrier_seconds = 4.0e-6;
  return m;
}

MachineModel generic() {
  MachineModel m;
  m.name = "generic";
  m.beta_local = 2.0e-9;
  m.caches = {
      {32.0 * 1024, 1.0e-9},
      {1.0 * 1024 * 1024, 6.0e-9},
      {8.0 * 1024 * 1024, 1.8e-8},
      {64.0 * 1024 * 1024, 1.0e-7},   // DRAM (flat beyond)
  };
  m.compute_scale = 0.8;
  m.alpha_net = 3.0e-6;
  m.beta_net = 1.0e-9;
  m.nic_contention = 0.2;
  m.a2a_coeff = 0.7;
  m.a2a_exponent = 0.25;
  m.ag_coeff = 1.5;
  m.ag_exponent = 0.05;
  m.cores_per_node = 16;
  return m;
}

MachineModel miniaturized(MachineModel machine, double factor) {
  if (factor <= 0.0) {
    throw std::invalid_argument("miniaturized: factor must be positive");
  }
  machine.alpha_net *= factor;
  machine.thread_barrier_seconds *= factor;
  for (auto& level : machine.caches) level.capacity_bytes *= factor;
  return machine;
}

MachineModel preset(const std::string& name) {
  if (name == "franklin") return franklin();
  if (name == "hopper") return hopper();
  if (name == "carver") return carver();
  if (name == "generic") return generic();
  throw std::invalid_argument("unknown machine preset: " + name);
}

}  // namespace dbfs::model
