// The paper's §5 performance model, made executable.
//
// Memory side: αL(x) is the latency of an irregular reference into a
// working set of x bytes — a step function over the cache hierarchy —
// and βL is the per-word streaming (unit-stride) cost.
//
// Network side: αN is per-message latency; β terms are per-byte transfer
// costs *qualified by the communication pattern and participant count*,
// exactly as §5 defines βN,a2a(p) and βN,ag(p). On a 3D torus the
// bisection bandwidth scales as p^(2/3), so per-node all-to-all bandwidth
// degrades as p^(1/3); that exponent is a per-machine parameter.
//
// Presets approximate the paper's three testbeds. Absolute constants are
// calibrated to land in the papers' reported ranges; EXPERIMENTS.md
// records paper-vs-model for every figure.
#pragma once

#include <string>
#include <vector>

namespace dbfs::model {

struct CacheLevel {
  double capacity_bytes;
  double latency_seconds;  ///< cost of one irregular reference hitting here
};

struct MachineModel {
  std::string name;

  // --- local memory ---
  double beta_local;             ///< seconds per 8-byte word, streaming
  std::vector<CacheLevel> caches;  ///< ascending capacity; last level = DRAM
  /// Beyond the last cache level, irregular-reference latency keeps
  /// growing gently with the working set (TLB reach / page-walk depth):
  /// alpha = dram * (1 + tlb_growth * log2(bytes / dram_capacity)).
  /// This is the §6/Fig 10 mechanism by which denser graphs (shorter
  /// vectors at fixed edges) soften the 2D algorithm's cache penalty.
  double tlb_growth = 0.12;
  double compute_scale = 1.0;    ///< integer-core speed multiplier (<1 = faster)

  // --- network ---
  double alpha_net;              ///< seconds per message
  double beta_net;               ///< seconds per byte, point-to-point baseline
  /// NIC saturation: each additional rank sharing a node's injection port
  /// adds this fraction of per-byte cost (more outstanding requests per
  /// NIC — the paper's §6 explanation for flat 1D's collapse at scale and
  /// a key advantage of the hybrid codes, which run one rank per NUMA
  /// domain). Effective per-rank volume is multiplied by
  /// 1 + nic_contention * (ranks_per_node - 1).
  double nic_contention = 0.0;
  double a2a_coeff = 1.0;        ///< βN,a2a(g) = beta_net * a2a_coeff * g^a2a_exp
  double a2a_exponent = 1.0 / 3.0;
  double ag_coeff = 1.0;         ///< βN,ag(g)  = beta_net * ag_coeff * g^ag_exp
  double ag_exponent = 0.15;

  // --- node structure (hybrid runs) ---
  int cores_per_node = 4;
  double thread_efficiency_sigma = 0.08;  ///< ε(t) = 1 / (1 + σ(t-1))
  double thread_barrier_seconds = 2.5e-6; ///< one intra-node barrier

  /// Latency of an irregular reference into a working set of `bytes`.
  double alpha_local(double bytes) const;

  /// Effective per-byte cost for an all-to-all among g participants.
  double a2a_beta(int g) const;

  /// Effective per-byte cost for an allgather among g participants.
  double ag_beta(int g) const;

  /// Parallel efficiency of t-way intra-node threading, in (0, 1].
  double thread_efficiency(int t) const;
};

/// Cray XT4 (Franklin at NERSC): quad-core Budapest Opterons, SeaStar2
/// 3D torus. Strong network relative to its slow cores.
MachineModel franklin();

/// Cray XE6 (Hopper): 2x12-core Magny-Cours, Gemini. Much faster integer
/// cores but bisection bandwidth per core regressed — the configuration
/// where the paper's 2D algorithms overtake 1D.
MachineModel hopper();

/// IBM iDataPlex (Carver): dual quad-core Nehalem, QDR InfiniBand fat
/// tree — used only for the PBGL comparison (Table 2).
MachineModel carver();

/// A neutral commodity-cluster model for examples.
MachineModel generic();

/// Look up a preset by name ("franklin", "hopper", "carver", "generic").
MachineModel preset(const std::string& name);

/// Miniaturize a machine for scaled-down experiments: per-message
/// latency, thread-barrier cost, and cache capacities shrink by `factor`
/// (the experiment-size ratio), preserving the original operating
/// point's compute : latency : bandwidth balance and §5 working-set
/// relationships. Bandwidth terms are untouched — data volumes scale
/// themselves. See DESIGN.md §5 ("Machine miniaturization").
MachineModel miniaturized(MachineModel machine, double factor);

}  // namespace dbfs::model
