#include "model/clocks.hpp"

#include <algorithm>
#include <cassert>

namespace dbfs::model {

void VirtualClocks::collective(std::span<const int> group,
                               double transfer_seconds) {
  double start = 0.0;
  for (int r : group) {
    start = std::max(start, now_[static_cast<std::size_t>(r)]);
  }
  const double end = start + transfer_seconds;
  for (int r : group) {
    const auto i = static_cast<std::size_t>(r);
    comm_[i] += end - now_[i];
    now_[i] = end;
  }
}

void VirtualClocks::collective_varying(std::span<const int> group,
                                       std::span<const double> costs) {
  assert(group.size() == costs.size());
  double start = 0.0;
  for (int r : group) {
    start = std::max(start, now_[static_cast<std::size_t>(r)]);
  }
  double end = start;
  for (double c : costs) end = std::max(end, start + c);
  for (int r : group) {
    const auto i = static_cast<std::size_t>(r);
    comm_[i] += end - now_[i];
    now_[i] = end;
  }
}

double VirtualClocks::max_now() const noexcept {
  double best = 0.0;
  for (double t : now_) best = std::max(best, t);
  return best;
}

void VirtualClocks::seed(double t) {
  for (double& n : now_) n = std::max(n, t);
}

void VirtualClocks::reset() {
  std::fill(now_.begin(), now_.end(), 0.0);
  std::fill(comp_.begin(), comp_.end(), 0.0);
  std::fill(comm_.begin(), comm_.end(), 0.0);
}

}  // namespace dbfs::model
