// Per-rank virtual clocks for the cluster simulator.
//
// Each simulated rank carries a clock advanced by modelled local work.
// A blocking collective synchronizes a group: it starts when the slowest
// participant arrives, so every other participant accrues waiting time —
// which the paper counts as communication time ("the communication times
// also include waiting at synchronization barriers", §6). This is also
// exactly the accounting that reproduces the Figure 4 idle-imbalance
// heatmap.
#pragma once

#include <span>
#include <vector>

namespace dbfs::model {

class VirtualClocks {
 public:
  VirtualClocks() = default;
  explicit VirtualClocks(int ranks)
      : now_(static_cast<std::size_t>(ranks), 0.0),
        comp_(static_cast<std::size_t>(ranks), 0.0),
        comm_(static_cast<std::size_t>(ranks), 0.0) {}

  int ranks() const noexcept { return static_cast<int>(now_.size()); }

  /// Advance one rank's clock by `seconds` of local computation.
  void advance_compute(int rank, double seconds) {
    now_[static_cast<std::size_t>(rank)] += seconds;
    comp_[static_cast<std::size_t>(rank)] += seconds;
  }

  /// Execute a blocking collective among `group`: all members wait for the
  /// slowest, then pay `transfer_seconds` together. Waiting + transfer are
  /// both charged to communication time.
  void collective(std::span<const int> group, double transfer_seconds);

  /// A collective where members pay different transfer costs (e.g. a
  /// gather whose root also performs the merge). `costs[i]` applies to
  /// group[i]; everyone still leaves at the same time (the max), so
  /// cheaper members accrue the difference as waiting.
  void collective_varying(std::span<const int> group,
                          std::span<const double> costs);

  double now(int rank) const noexcept {
    return now_[static_cast<std::size_t>(rank)];
  }
  double compute_time(int rank) const noexcept {
    return comp_[static_cast<std::size_t>(rank)];
  }
  double comm_time(int rank) const noexcept {
    return comm_[static_cast<std::size_t>(rank)];
  }

  /// Simulated wall clock: the furthest-advanced rank.
  double max_now() const noexcept;

  /// Advance every rank whose clock is behind `t` up to `t` without
  /// attributing the jump to compute or communication. Used when a
  /// rebuilt communicator resumes a traversal at the virtual time its
  /// predecessor died: survivors' elapsed history lives in the old
  /// clocks' accounting, and the fresh clocks must not re-earn it.
  void seed(double t);

  const std::vector<double>& all_now() const noexcept { return now_; }
  const std::vector<double>& all_compute() const noexcept { return comp_; }
  const std::vector<double>& all_comm() const noexcept { return comm_; }

  void reset();

 private:
  std::vector<double> now_;
  std::vector<double> comp_;
  std::vector<double> comm_;
};

}  // namespace dbfs::model
