#include "comm/wire_format.hpp"

namespace dbfs::comm {

const char* to_string(WireFormat f) {
  switch (f) {
    case WireFormat::kRaw:
      return "raw";
    case WireFormat::kSieve:
      return "sieve";
    case WireFormat::kBitmap:
      return "bitmap";
    case WireFormat::kVarint:
      return "varint";
    case WireFormat::kAuto:
      return "auto";
  }
  return "?";
}

double WireStats::compression_ratio() const noexcept {
  if (raw_bytes == 0) return 1.0;
  return static_cast<double>(encoded_bytes) / static_cast<double>(raw_bytes);
}

double WireStats::raw_block_share() const noexcept {
  const std::uint64_t total = blocks_items + blocks_bitmap + blocks_varint;
  if (total == 0) return 0.0;
  return static_cast<double>(blocks_items) / static_cast<double>(total);
}

WireFormat parse_wire_format(const std::string& name) {
  if (name == "raw") return WireFormat::kRaw;
  if (name == "sieve") return WireFormat::kSieve;
  if (name == "bitmap") return WireFormat::kBitmap;
  if (name == "varint") return WireFormat::kVarint;
  if (name == "auto") return WireFormat::kAuto;
  throw std::invalid_argument("unknown wire format: " + name);
}

void put_uvarint(std::vector<std::uint8_t>& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

std::size_t uvarint_size(std::uint64_t value) noexcept {
  std::size_t bytes = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++bytes;
  }
  return bytes;
}

std::size_t get_uvarint(const std::uint8_t* data, std::size_t size,
                        std::uint64_t* value) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < size && i < 10; ++i) {
    v |= static_cast<std::uint64_t>(data[i] & 0x7F) << (7 * i);
    if ((data[i] & 0x80) == 0) {
      *value = v;
      return i + 1;
    }
  }
  throw WireDecodeError("wire: truncated or overlong varint");
}

namespace detail {

Frame read_frame(const std::uint8_t* data, std::size_t size) {
  if (size == 0) throw WireDecodeError("wire: empty frame");
  const std::uint8_t tag = data[0];
  if (tag > static_cast<std::uint8_t>(BlockEncoding::kVarint)) {
    throw WireDecodeError("wire: unknown block encoding tag");
  }
  Frame f;
  f.encoding = static_cast<BlockEncoding>(tag);
  std::size_t pos = 1;
  pos += get_uvarint(data + pos, size - pos, &f.count);
  pos += get_uvarint(data + pos, size - pos, &f.payload_bytes);
  f.header_bytes = pos;
  if (f.payload_bytes > size - pos) {
    throw WireDecodeError("wire: frame payload overruns buffer");
  }
  return f;
}

void write_frame(std::vector<std::uint8_t>& out, BlockEncoding encoding,
                 std::uint64_t count, std::uint64_t payload_bytes) {
  out.push_back(static_cast<std::uint8_t>(encoding));
  put_uvarint(out, count);
  put_uvarint(out, payload_bytes);
}

std::uint64_t bitmap_payload_size(std::uint64_t width, bool unique,
                                  std::uint64_t parent_varint_bytes) noexcept {
  // A duplicate target cannot be expressed as a presence bit; the caller
  // falls back to varint. Cap the range so one outlier vertex cannot
  // inflate the presence bitmap past any useful size.
  constexpr std::uint64_t kMaxWidth = std::uint64_t{1} << 32;
  if (!unique || width == 0 || width > kMaxWidth) return 0;
  return (width + 7) / 8 + parent_varint_bytes;
}

}  // namespace detail

void encode_vertex_list(std::span<const vid_t> sorted, WireFormat format,
                        std::vector<std::uint8_t>& out, WireStats* stats) {
  if (sorted.empty()) return;
  const std::uint64_t raw_bytes =
      static_cast<std::uint64_t>(sorted.size()) * sizeof(vid_t);
  const std::size_t out_before = out.size();

  BlockEncoding choice = BlockEncoding::kItems;
  std::uint64_t varint_payload = 0;
  std::uint64_t bitmap_payload = 0;
  if (wire_compresses(format)) {
    bool unique = true;
    vid_t prev = 0;
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      if (i > 0 && sorted[i] == prev) unique = false;
      varint_payload += uvarint_size(static_cast<std::uint64_t>(
          i == 0 ? sorted[i] : sorted[i] - prev));
      prev = sorted[i];
    }
    const auto width =
        static_cast<std::uint64_t>(sorted.back() - sorted.front() + 1);
    bitmap_payload = detail::bitmap_payload_size(width, unique, 0);
    if (bitmap_payload > 0) {
      bitmap_payload += uvarint_size(
          static_cast<std::uint64_t>(sorted.front())) +
          uvarint_size(width);
    }
    if (format == WireFormat::kVarint) {
      choice = BlockEncoding::kVarint;
    } else if (format == WireFormat::kBitmap) {
      choice = bitmap_payload > 0 ? BlockEncoding::kBitmap
                                  : BlockEncoding::kVarint;
    } else {
      choice = BlockEncoding::kItems;
      std::uint64_t best = raw_bytes;
      if (bitmap_payload > 0 && bitmap_payload < best) {
        best = bitmap_payload;
        choice = BlockEncoding::kBitmap;
      }
      if (varint_payload < best) choice = BlockEncoding::kVarint;
    }
  }

  switch (choice) {
    case BlockEncoding::kItems: {
      detail::write_frame(out, BlockEncoding::kItems,
                          static_cast<std::uint64_t>(sorted.size()),
                          raw_bytes);
      const std::size_t at = out.size();
      out.resize(at + static_cast<std::size_t>(raw_bytes));
      std::memcpy(out.data() + at, sorted.data(),
                  static_cast<std::size_t>(raw_bytes));
      if (stats != nullptr) ++stats->blocks_items;
      break;
    }
    case BlockEncoding::kBitmap: {
      detail::write_frame(out, BlockEncoding::kBitmap,
                          static_cast<std::uint64_t>(sorted.size()),
                          bitmap_payload);
      const auto base = static_cast<std::uint64_t>(sorted.front());
      const auto width =
          static_cast<std::uint64_t>(sorted.back() - sorted.front() + 1);
      put_uvarint(out, base);
      put_uvarint(out, width);
      const std::size_t bits_at = out.size();
      out.resize(bits_at + static_cast<std::size_t>((width + 7) / 8), 0);
      for (vid_t v : sorted) {
        const auto bit = static_cast<std::uint64_t>(v) - base;
        out[bits_at + static_cast<std::size_t>(bit >> 3)] |=
            static_cast<std::uint8_t>(1u << (bit & 7));
      }
      if (stats != nullptr) ++stats->blocks_bitmap;
      break;
    }
    case BlockEncoding::kVarint: {
      detail::write_frame(out, BlockEncoding::kVarint,
                          static_cast<std::uint64_t>(sorted.size()),
                          varint_payload);
      vid_t prev = 0;
      for (std::size_t i = 0; i < sorted.size(); ++i) {
        put_uvarint(out, static_cast<std::uint64_t>(
                             i == 0 ? sorted[i] : sorted[i] - prev));
        prev = sorted[i];
      }
      if (stats != nullptr) ++stats->blocks_varint;
      break;
    }
  }

  if (stats != nullptr) {
    stats->raw_bytes += raw_bytes;
    stats->encoded_bytes += out.size() - out_before;
    stats->items += sorted.size();
  }
}

void encode_vertex_bitmap(std::span<const vid_t> sorted, vid_t range_begin,
                          vid_t range_end, WireFormat format,
                          std::vector<std::uint8_t>& out, WireStats* stats) {
  if (sorted.empty()) return;
  const auto width =
      static_cast<std::uint64_t>(range_end) - static_cast<std::uint64_t>(
                                                  range_begin);
  // Fast path only when dense enough that a range-wide bitmap wins
  // against raw ids regardless of layout: count bits >= width/8 bits
  // means the bitmap's width/8 bytes <= 8*count bytes of raw items.
  if (!wire_compresses(format) || width == 0 ||
      static_cast<std::uint64_t>(sorted.size()) * 8 < width) {
    encode_vertex_list(sorted, format, out, stats);
    return;
  }
  const std::uint64_t raw_bytes =
      static_cast<std::uint64_t>(sorted.size()) * sizeof(vid_t);
  const std::size_t out_before = out.size();
  const auto base = static_cast<std::uint64_t>(range_begin);
  const std::uint64_t bitmap_payload =
      uvarint_size(base) + uvarint_size(width) + (width + 7) / 8;
  detail::write_frame(out, BlockEncoding::kBitmap,
                      static_cast<std::uint64_t>(sorted.size()),
                      bitmap_payload);
  put_uvarint(out, base);
  put_uvarint(out, width);
  const std::size_t bits_at = out.size();
  out.resize(bits_at + static_cast<std::size_t>((width + 7) / 8), 0);
  for (vid_t v : sorted) {
    const auto bit = static_cast<std::uint64_t>(v) - base;
    out[bits_at + static_cast<std::size_t>(bit >> 3)] |=
        static_cast<std::uint8_t>(1u << (bit & 7));
  }
  if (stats != nullptr) {
    ++stats->blocks_bitmap;
    stats->raw_bytes += raw_bytes;
    stats->encoded_bytes += out.size() - out_before;
    stats->items += sorted.size();
  }
}

void decode_vertex_stream(const std::uint8_t* data, std::size_t size,
                          std::vector<vid_t>& out) {
  std::size_t offset = 0;
  while (offset < size) {
    const detail::Frame f = detail::read_frame(data + offset, size - offset);
    const std::uint8_t* payload = data + offset + f.header_bytes;
    switch (f.encoding) {
      case BlockEncoding::kItems: {
        if (f.payload_bytes != f.count * sizeof(vid_t)) {
          throw WireDecodeError("wire: vertex block size mismatch");
        }
        const std::size_t at = out.size();
        out.resize(at + static_cast<std::size_t>(f.count));
        std::memcpy(out.data() + at, payload,
                    static_cast<std::size_t>(f.payload_bytes));
        break;
      }
      case BlockEncoding::kBitmap: {
        std::size_t pos = 0;
        std::uint64_t base = 0;
        std::uint64_t width = 0;
        pos += get_uvarint(payload + pos,
                           static_cast<std::size_t>(f.payload_bytes) - pos,
                           &base);
        pos += get_uvarint(payload + pos,
                           static_cast<std::size_t>(f.payload_bytes) - pos,
                           &width);
        const auto bitmap_bytes = static_cast<std::size_t>((width + 7) / 8);
        if (pos + bitmap_bytes != f.payload_bytes) {
          throw WireDecodeError("wire: vertex bitmap block truncated");
        }
        const std::uint8_t* bits = payload + pos;
        std::uint64_t found = 0;
        for (std::uint64_t b = 0; b < width; ++b) {
          if ((bits[static_cast<std::size_t>(b >> 3)] >> (b & 7)) & 1u) {
            out.push_back(static_cast<vid_t>(base + b));
            ++found;
          }
        }
        if (found != f.count) {
          throw WireDecodeError("wire: vertex bitmap count mismatch");
        }
        break;
      }
      case BlockEncoding::kVarint: {
        std::size_t pos = 0;
        vid_t prev = 0;
        for (std::uint64_t i = 0; i < f.count; ++i) {
          std::uint64_t delta = 0;
          pos += get_uvarint(
              payload + pos,
              static_cast<std::size_t>(f.payload_bytes) - pos, &delta);
          prev += static_cast<vid_t>(delta);
          out.push_back(prev);
        }
        if (pos != f.payload_bytes) {
          throw WireDecodeError("wire: vertex varint block size mismatch");
        }
        break;
      }
    }
    offset += f.header_bytes + static_cast<std::size_t>(f.payload_bytes);
  }
}

}  // namespace dbfs::comm
