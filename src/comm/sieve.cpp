#include "comm/sieve.hpp"

namespace dbfs::comm {

void Sieve::reset(int ranks, vid_t num_vertices) {
  const std::size_t words =
      (static_cast<std::size_t>(num_vertices) + 63) / 64;
  words_.resize(static_cast<std::size_t>(ranks));
  for (auto& rank_words : words_) {
    rank_words.assign(words, 0);
  }
  sums_.assign(static_cast<std::size_t>(ranks), 0);
}

}  // namespace dbfs::comm
