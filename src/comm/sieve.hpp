// Sender-side visited sieve (Lv et al. 2012): each rank keeps a private
// bitmap of vertices it knows to be globally visited and drops candidates
// whose target is already set before the level's exchange is packed.
//
// Correctness is sender-local: a vertex shipped at level L is visited (at
// level <= L) by its owner whether or not it wins the parent race, so any
// later re-send of it would be rejected on arrival — dropping it changes
// no parent and no level. The bitmap is fed from two sources: every
// candidate a rank ships (marked by sieve_and_dedup) and the rank's own
// per-level winners (marked by the BFS update loop). No extra
// communication is needed.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "util/prng.hpp"
#include "util/types.hpp"

namespace dbfs::comm {

/// Per-rank visited bitmaps for a simulated cluster (rank-private words,
/// safe to touch from Cluster::for_each_rank phases).
class Sieve {
 public:
  /// Size for `ranks` bitmaps of `num_vertices` bits each and clear them.
  /// Called once per BFS run.
  void reset(int ranks, vid_t num_vertices);

  bool test(int rank, vid_t v) const noexcept {
    const auto& words = words_[static_cast<std::size_t>(rank)];
    return (words[static_cast<std::size_t>(v) >> 6] >>
            (static_cast<std::size_t>(v) & 63)) &
           1u;
  }

  void mark(int rank, vid_t v) noexcept {
    auto& word = words_[static_cast<std::size_t>(rank)]
                       [static_cast<std::size_t>(v) >> 6];
    const std::uint64_t bit = std::uint64_t{1}
                              << (static_cast<std::size_t>(v) & 63);
    if (checksums_) {
      // Keep the running mark checksum consistent under idempotent
      // re-marks: only a transition contributes.
      if ((word & bit) != 0) return;
      sums_[static_cast<std::size_t>(rank)] += mark_hash(v);
    }
    word |= bit;
  }

  /// Mark `v` in every rank's bitmap (used for the run's source, which
  /// every rank knows to be visited from the start).
  void mark_all(vid_t v) noexcept {
    for (std::size_t r = 0; r < words_.size(); ++r) {
      mark(static_cast<int>(r), v);
    }
  }

  /// True once reset() sized bitmaps for at least one rank.
  bool active() const noexcept { return !words_.empty(); }

  /// Arm (or disarm) the ABFT mark checksums before the next reset():
  /// every legitimate mark() transition then feeds a per-rank wrapping
  /// sum of mark_hash(v). An at-rest bit flip (corrupt()) bypasses the
  /// sum, so the state auditor detects it by recomputing the sum from
  /// the words — whether or not the victim vertex is visited by then.
  void enable_checksums(bool on) noexcept { checksums_ = on; }

  bool checksums() const noexcept { return checksums_; }

  /// Write-time running checksum of `rank`'s marks (zero when disarmed).
  std::uint64_t sum(int rank) const noexcept {
    return checksums_ ? sums_[static_cast<std::size_t>(rank)] : 0;
  }

  static std::uint64_t mark_hash(vid_t v) noexcept {
    return util::mix64(0x5349455645ULL ^ static_cast<std::uint64_t>(v));
  }

  /// Flip one bitmap bit WITHOUT touching the running checksum — the
  /// simulated hardware fault (fault-injection only; never a legitimate
  /// mutation).
  void corrupt(int rank, vid_t v) noexcept {
    words_[static_cast<std::size_t>(rank)]
          [static_cast<std::size_t>(v) >> 6] ^=
        std::uint64_t{1} << (static_cast<std::size_t>(v) & 63);
  }

  /// Visit every set bit of `rank`'s bitmap, ascending. Used by the state
  /// auditor to verify marked ⊆ globally-visited — a spuriously set bit
  /// suppresses future sends of an unvisited vertex, which is the one
  /// sieve corruption that changes the answer.
  template <typename Fn>
  void for_each_marked(int rank, Fn&& fn) const {
    const auto& words = words_[static_cast<std::size_t>(rank)];
    for (std::size_t w = 0; w < words.size(); ++w) {
      std::uint64_t bits = words[w];
      while (bits != 0) {
        const int bit = std::countr_zero(bits);
        bits &= bits - 1;
        fn(static_cast<vid_t>(w * 64 + static_cast<std::size_t>(bit)));
      }
    }
  }

 private:
  std::vector<std::vector<std::uint64_t>> words_;
  std::vector<std::uint64_t> sums_;  // per-rank mark checksums (ABFT)
  bool checksums_ = false;
};

/// Filter and order one destination block in place before encoding:
/// drop targets already marked in `rank`'s bitmap, sort by target, drop
/// in-level duplicate targets, and mark the survivors. Returns how many
/// candidates were dropped (sieved + deduplicated).
///
/// The duplicate-keeping policy must match the receiver's merge so the
/// BFS output stays bit-identical to the raw path:
///  * keep_max_parent = false: owners take the first occurrence in
///    receive order, so the sort is stable and the first duplicate wins.
///  * keep_max_parent = true (1D and 2D): owners combine by max parent,
///    so ties sort parent-descending and the max-parent duplicate wins.
///    Both distributions use this order-independent rule so a recovery
///    replay (src/recover/) reproduces fault-free parents exactly.
template <typename C>
std::uint64_t sieve_and_dedup(Sieve& sieve, int rank, std::vector<C>& block,
                              bool keep_max_parent) {
  const std::uint64_t before = block.size();
  block.erase(std::remove_if(block.begin(), block.end(),
                             [&](const C& c) {
                               return sieve.test(rank, c.vertex);
                             }),
              block.end());
  if (keep_max_parent) {
    std::sort(block.begin(), block.end(), [](const C& a, const C& b) {
      return a.vertex != b.vertex ? a.vertex < b.vertex
                                  : a.parent > b.parent;
    });
  } else {
    std::stable_sort(block.begin(), block.end(),
                     [](const C& a, const C& b) {
                       return a.vertex < b.vertex;
                     });
  }
  block.erase(std::unique(block.begin(), block.end(),
                          [](const C& a, const C& b) {
                            return a.vertex == b.vertex;
                          }),
              block.end());
  for (const C& c : block) sieve.mark(rank, c.vertex);
  return before - block.size();
}

}  // namespace dbfs::comm
