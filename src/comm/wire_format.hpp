// Compressed wire formats for the per-level frontier/candidate exchanges
// (Lv et al. 2012, "Compression and Sieve"; Buluç et al. 2017): dense
// destination blocks ship as owner-range bitmaps, sparse blocks as
// delta-encoded varints, and the `auto` polyalgorithm picks the smaller
// encoding per (destination, level) from exact byte sizes — the same
// size-based switching idea as the SpMSV SPA/heap selector.
//
// Every encoded block is self-framing (tag byte + item count + payload
// length, all LEB128), so a stream formed by concatenating blocks — the
// receive side of an alltoallv or allgatherv — decodes unambiguously
// block by block. Encoded payloads travel through the existing simmpi
// collectives as std::uint8_t items, which keeps the traffic metering and
// the checked_* payload checksums working unchanged on the compressed
// bytes. An empty block encodes to zero bytes, matching the raw path.
//
// This header is deliberately independent of the bfs layer: candidate
// codecs are templated over any trivially-copyable item exposing
// `.vertex`/`.parent` members (bfs::Candidate in practice).
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace dbfs::comm {

/// CLI-selectable policy for the candidate/frontier exchanges.
enum class WireFormat {
  kRaw,     ///< legacy byte-for-byte path: no sieve, 16-byte candidates
  kSieve,   ///< sender-side visited sieve, raw item encoding
  kBitmap,  ///< sieve + owner-range bitmap blocks (varint fallback when a
            ///< block still carries duplicate targets)
  kVarint,  ///< sieve + delta-encoded varint blocks
  kAuto,    ///< sieve + per-block minimum of {items, bitmap, varint}
};

const char* to_string(WireFormat f);
/// Parse "raw|sieve|bitmap|varint|auto"; throws std::invalid_argument.
WireFormat parse_wire_format(const std::string& name);

/// True when the format filters candidates through the visited sieve.
inline bool wire_sieves(WireFormat f) noexcept {
  return f != WireFormat::kRaw;
}
/// True when the format compresses payload blocks (vs raw item bytes).
inline bool wire_compresses(WireFormat f) noexcept {
  return f == WireFormat::kBitmap || f == WireFormat::kVarint ||
         f == WireFormat::kAuto;
}

/// Per-block encoding actually chosen on the wire (the frame tag byte).
enum class BlockEncoding : std::uint8_t {
  kItems = 0,   ///< raw little-endian item bytes
  kBitmap = 1,  ///< base/width presence bitmap + varint parents
  kVarint = 2,  ///< varint vertex deltas + varint parents
};

/// Byte accounting for the metrics registry and the codec cost charges.
struct WireStats {
  std::uint64_t raw_bytes = 0;      ///< bytes the blocks would cost unencoded
  std::uint64_t encoded_bytes = 0;  ///< bytes actually shipped (incl. frames)
  std::uint64_t items = 0;
  std::uint64_t blocks_items = 0;
  std::uint64_t blocks_bitmap = 0;
  std::uint64_t blocks_varint = 0;

  void merge(const WireStats& o) noexcept {
    raw_bytes += o.raw_bytes;
    encoded_bytes += o.encoded_bytes;
    items += o.items;
    blocks_items += o.blocks_items;
    blocks_bitmap += o.blocks_bitmap;
    blocks_varint += o.blocks_varint;
  }

  /// encoded/raw shipped-byte ratio: < 1 means the codec pays for
  /// itself, ~1 means it is shipping raw blocks plus framing. 1.0 when
  /// nothing has been encoded yet. This is the definition the doctor's
  /// codec-fallback classifier and the wire.* metrics share.
  double compression_ratio() const noexcept;

  /// Share of emitted blocks that fell back to raw item lists (0 when no
  /// blocks were emitted).
  double raw_block_share() const noexcept;
};

/// Malformed frame or truncated payload. Checked collectives verify the
/// transported bytes, so hitting this indicates a codec bug, not a fault.
struct WireDecodeError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

// ---------- LEB128 varints ----------

void put_uvarint(std::vector<std::uint8_t>& out, std::uint64_t value);
std::size_t uvarint_size(std::uint64_t value) noexcept;
/// Decode one varint from data[0..size); returns bytes consumed and
/// writes the value. Throws WireDecodeError on truncation or overflow.
std::size_t get_uvarint(const std::uint8_t* data, std::size_t size,
                        std::uint64_t* value);

// ---------- frontier vertex lists (2D expand payloads) ----------

/// Encode one strictly-ascending vertex list as a framed block appended
/// to `out`. kRaw/kSieve ship raw 8-byte ids; compressing formats pick
/// per the policy. Empty input appends nothing.
void encode_vertex_list(std::span<const vid_t> sorted, WireFormat format,
                        std::vector<std::uint8_t>& out, WireStats* stats);

/// Decode a concatenation of framed vertex-list blocks, appending the
/// vertices to `out` in stream order.
void decode_vertex_stream(const std::uint8_t* data, std::size_t size,
                          std::vector<vid_t>& out);

/// Dense-bitmap fast path for vertex lists whose owner range is known to
/// the caller (the bottom-up frontier/visited exchanges, where every
/// vertex falls in [range_begin, range_end)): when the format compresses
/// and the list fills at least 1/8 of the range — the density at which a
/// range-wide presence bitmap beats raw 8-byte ids outright — one bitmap
/// block spanning the whole range is emitted directly, with no per-item
/// sizing pass. Sparse lists and non-compressing formats delegate to
/// encode_vertex_list unchanged; either way the output decodes with
/// decode_vertex_stream. This is a separate entry point so the top-down
/// expand/fold byte streams stay byte-for-byte what they were.
void encode_vertex_bitmap(std::span<const vid_t> sorted, vid_t range_begin,
                          vid_t range_end, WireFormat format,
                          std::vector<std::uint8_t>& out, WireStats* stats);

// ---------- candidate blocks ----------

namespace detail {

struct Frame {
  BlockEncoding encoding;
  std::uint64_t count;
  std::uint64_t payload_bytes;
  std::size_t header_bytes;
};

/// Parse one block frame; validates the payload fits in the buffer.
Frame read_frame(const std::uint8_t* data, std::size_t size);

void write_frame(std::vector<std::uint8_t>& out, BlockEncoding encoding,
                 std::uint64_t count, std::uint64_t payload_bytes);

/// Byte size of the bitmap payload for vertices spanning [base, last], or
/// 0 when the block is not bitmap-encodable (duplicates present).
std::uint64_t bitmap_payload_size(std::uint64_t width, bool unique,
                                  std::uint64_t parent_varint_bytes) noexcept;

}  // namespace detail

/// Encode one destination block of candidate items as a framed block
/// appended to `out`. Compressing formats require the block sorted
/// ascending by `.vertex` (the sieve pass guarantees this); kBitmap
/// falls back to varint per block when duplicate targets remain. Empty
/// input appends nothing.
template <typename C>
void encode_candidates(std::span<const C> block, WireFormat format,
                       std::vector<std::uint8_t>& out, WireStats* stats) {
  static_assert(std::is_trivially_copyable_v<C>,
                "wire items must be trivially copyable");
  if (block.empty()) return;
  const std::uint64_t raw_bytes =
      static_cast<std::uint64_t>(block.size()) * sizeof(C);
  const std::size_t out_before = out.size();

  BlockEncoding choice = BlockEncoding::kItems;
  std::uint64_t varint_payload = 0;
  std::uint64_t bitmap_payload = 0;
  if (wire_compresses(format)) {
    // Exact payload sizes, computed without writing: varint = delta +
    // parent per item; bitmap = base + width + presence bits + parents.
    bool unique = true;
    std::uint64_t parent_bytes = 0;
    vid_t prev = 0;
    for (std::size_t i = 0; i < block.size(); ++i) {
      const vid_t v = block[i].vertex;
      const auto delta = static_cast<std::uint64_t>(v - (i == 0 ? 0 : prev));
      if (i > 0 && v == prev) unique = false;
      varint_payload += uvarint_size(i == 0
                                         ? static_cast<std::uint64_t>(v)
                                         : delta);
      const auto pb =
          uvarint_size(static_cast<std::uint64_t>(block[i].parent));
      varint_payload += pb;
      parent_bytes += pb;
      prev = v;
    }
    const auto width = static_cast<std::uint64_t>(
        block.back().vertex - block.front().vertex + 1);
    bitmap_payload = detail::bitmap_payload_size(width, unique, parent_bytes);
    if (bitmap_payload > 0) {
      bitmap_payload += uvarint_size(
          static_cast<std::uint64_t>(block.front().vertex)) +
          uvarint_size(width);
    }

    if (format == WireFormat::kVarint) {
      choice = BlockEncoding::kVarint;
    } else if (format == WireFormat::kBitmap) {
      choice = bitmap_payload > 0 ? BlockEncoding::kBitmap
                                  : BlockEncoding::kVarint;
    } else {  // kAuto: strict minimum, raw wins ties (cheapest to decode)
      choice = BlockEncoding::kItems;
      std::uint64_t best = raw_bytes;
      if (bitmap_payload > 0 && bitmap_payload < best) {
        best = bitmap_payload;
        choice = BlockEncoding::kBitmap;
      }
      if (varint_payload < best) choice = BlockEncoding::kVarint;
    }
  }

  switch (choice) {
    case BlockEncoding::kItems: {
      detail::write_frame(out, BlockEncoding::kItems,
                          static_cast<std::uint64_t>(block.size()),
                          raw_bytes);
      const std::size_t at = out.size();
      out.resize(at + static_cast<std::size_t>(raw_bytes));
      std::memcpy(out.data() + at, block.data(),
                  static_cast<std::size_t>(raw_bytes));
      if (stats != nullptr) ++stats->blocks_items;
      break;
    }
    case BlockEncoding::kBitmap: {
      detail::write_frame(out, BlockEncoding::kBitmap,
                          static_cast<std::uint64_t>(block.size()),
                          bitmap_payload);
      const auto base = static_cast<std::uint64_t>(block.front().vertex);
      const auto width = static_cast<std::uint64_t>(
          block.back().vertex - block.front().vertex + 1);
      put_uvarint(out, base);
      put_uvarint(out, width);
      const std::size_t bits_at = out.size();
      out.resize(bits_at + static_cast<std::size_t>((width + 7) / 8), 0);
      for (const C& c : block) {
        const auto bit =
            static_cast<std::uint64_t>(c.vertex) - base;
        out[bits_at + static_cast<std::size_t>(bit >> 3)] |=
            static_cast<std::uint8_t>(1u << (bit & 7));
      }
      for (const C& c : block) {
        put_uvarint(out, static_cast<std::uint64_t>(c.parent));
      }
      if (stats != nullptr) ++stats->blocks_bitmap;
      break;
    }
    case BlockEncoding::kVarint: {
      detail::write_frame(out, BlockEncoding::kVarint,
                          static_cast<std::uint64_t>(block.size()),
                          varint_payload);
      vid_t prev = 0;
      for (std::size_t i = 0; i < block.size(); ++i) {
        put_uvarint(out, static_cast<std::uint64_t>(
                             i == 0 ? block[i].vertex
                                    : block[i].vertex - prev));
        put_uvarint(out, static_cast<std::uint64_t>(block[i].parent));
        prev = block[i].vertex;
      }
      if (stats != nullptr) ++stats->blocks_varint;
      break;
    }
  }

  if (stats != nullptr) {
    stats->raw_bytes += raw_bytes;
    stats->encoded_bytes += out.size() - out_before;
    stats->items += block.size();
  }
}

/// Decode a concatenation of framed candidate blocks, appending the items
/// to `out` in stream order (bitmap blocks come back vertex-ascending,
/// exactly the order they were encoded in).
template <typename C>
void decode_candidate_stream(const std::uint8_t* data, std::size_t size,
                             std::vector<C>& out) {
  std::size_t offset = 0;
  while (offset < size) {
    const detail::Frame f = detail::read_frame(data + offset, size - offset);
    const std::uint8_t* payload = data + offset + f.header_bytes;
    switch (f.encoding) {
      case BlockEncoding::kItems: {
        if (f.payload_bytes != f.count * sizeof(C)) {
          throw WireDecodeError("wire: item block size mismatch");
        }
        const std::size_t at = out.size();
        out.resize(at + static_cast<std::size_t>(f.count));
        std::memcpy(out.data() + at, payload,
                    static_cast<std::size_t>(f.payload_bytes));
        break;
      }
      case BlockEncoding::kBitmap: {
        std::size_t pos = 0;
        std::uint64_t base = 0;
        std::uint64_t width = 0;
        pos += get_uvarint(payload + pos,
                           static_cast<std::size_t>(f.payload_bytes) - pos,
                           &base);
        pos += get_uvarint(payload + pos,
                           static_cast<std::size_t>(f.payload_bytes) - pos,
                           &width);
        const auto bitmap_bytes = static_cast<std::size_t>((width + 7) / 8);
        if (pos + bitmap_bytes > f.payload_bytes) {
          throw WireDecodeError("wire: bitmap block truncated");
        }
        const std::uint8_t* bits = payload + pos;
        pos += bitmap_bytes;
        std::uint64_t found = 0;
        for (std::uint64_t b = 0; b < width; ++b) {
          if ((bits[static_cast<std::size_t>(b >> 3)] >> (b & 7)) & 1u) {
            std::uint64_t parent = 0;
            pos += get_uvarint(
                payload + pos,
                static_cast<std::size_t>(f.payload_bytes) - pos, &parent);
            C c{};
            c.vertex = static_cast<vid_t>(base + b);
            c.parent = static_cast<vid_t>(parent);
            out.push_back(c);
            ++found;
          }
        }
        if (found != f.count || pos != f.payload_bytes) {
          throw WireDecodeError("wire: bitmap block count mismatch");
        }
        break;
      }
      case BlockEncoding::kVarint: {
        std::size_t pos = 0;
        vid_t prev = 0;
        for (std::uint64_t i = 0; i < f.count; ++i) {
          std::uint64_t delta = 0;
          std::uint64_t parent = 0;
          pos += get_uvarint(
              payload + pos,
              static_cast<std::size_t>(f.payload_bytes) - pos, &delta);
          pos += get_uvarint(
              payload + pos,
              static_cast<std::size_t>(f.payload_bytes) - pos, &parent);
          C c{};
          c.vertex = prev + static_cast<vid_t>(delta);
          c.parent = static_cast<vid_t>(parent);
          prev = c.vertex;
          out.push_back(c);
        }
        if (pos != f.payload_bytes) {
          throw WireDecodeError("wire: varint block size mismatch");
        }
        break;
      }
      default:
        throw WireDecodeError("wire: unknown block encoding");
    }
    offset += f.header_bytes + static_cast<std::size_t>(f.payload_bytes);
  }
}

}  // namespace dbfs::comm
