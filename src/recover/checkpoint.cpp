#include "recover/checkpoint.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "util/prng.hpp"

namespace dbfs::recover {

const char* to_string(Policy policy) {
  switch (policy) {
    case Policy::kShrink:
      return "shrink";
    case Policy::kSpare:
      return "spare";
  }
  return "?";
}

Policy parse_policy(const std::string& name) {
  if (name == "shrink") return Policy::kShrink;
  if (name == "spare") return Policy::kSpare;
  throw std::invalid_argument("unknown recovery policy: " + name);
}

std::uint64_t checkpoint_checksum(const Checkpoint& snapshot) noexcept {
  std::uint64_t h = 0x6368656b73756dULL;  // "cheksum" seed
  const auto mix = [&h](std::uint64_t v) { h = util::mix64(h ^ v); };
  mix(static_cast<std::uint64_t>(snapshot.levels_completed));
  mix(static_cast<std::uint64_t>(snapshot.global_frontier));
  mix(snapshot.level.size());
  for (level_t l : snapshot.level) mix(static_cast<std::uint64_t>(l));
  mix(snapshot.parent.size());
  for (vid_t p : snapshot.parent) mix(static_cast<std::uint64_t>(p));
  mix(snapshot.frontier.size());
  for (vid_t v : snapshot.frontier) mix(static_cast<std::uint64_t>(v));
  mix(static_cast<std::uint64_t>(snapshot.dirop_frontier_edges));
  mix(static_cast<std::uint64_t>(snapshot.dirop_unexplored_edges));
  mix(snapshot.dirop_bottom_up ? 1u : 0u);
  return h;
}

const char* checkpoint_defect(const Checkpoint& snapshot, vid_t source) {
  if (snapshot.level.empty() && snapshot.parent.empty()) {
    return nullptr;  // the implicit replay-from-source snapshot
  }
  const std::size_t n = snapshot.level.size();
  if (snapshot.parent.size() != n) return "array-size-mismatch";
  if (source < 0 || static_cast<std::size_t>(source) >= n) {
    return "source-out-of-range";
  }
  if (snapshot.parent[static_cast<std::size_t>(source)] != source) {
    return "source-parent";
  }
  if (snapshot.level[static_cast<std::size_t>(source)] != 0) {
    return "source-level";
  }
  for (std::size_t v = 0; v < n; ++v) {
    const level_t lv = snapshot.level[v];
    const vid_t pv = snapshot.parent[v];
    if (lv == kUnreached) {
      if (pv != kNoVertex) return "unreached-with-parent";
      continue;
    }
    if (lv < 0 || lv > snapshot.levels_completed) return "level-range";
    if (static_cast<vid_t>(v) == source) continue;
    if (pv < 0 || static_cast<std::size_t>(pv) >= n) return "parent-range";
    if (snapshot.level[static_cast<std::size_t>(pv)] != lv - 1) {
      return "tree-property";
    }
  }
  if (snapshot.global_frontier !=
      static_cast<std::int64_t>(snapshot.frontier.size())) {
    return "frontier-count";
  }
  level_t frontier_level = -1;
  for (vid_t v : snapshot.frontier) {
    if (v < 0 || static_cast<std::size_t>(v) >= n) return "frontier-range";
    const level_t lv = snapshot.level[static_cast<std::size_t>(v)];
    if (lv == kUnreached) return "frontier-unvisited";
    if (frontier_level < 0) frontier_level = lv;
    if (lv != frontier_level) return "frontier-level";
  }
  return nullptr;
}

void CheckpointStore::arm(const RecoverOptions& options) {
  options_ = options;
  armed_ = true;
  history_.clear();
  empty_ = Checkpoint{};
  prev_visited_ = 0;
  taken_ = 0;
  bytes_ = 0;
}

std::uint64_t CheckpointStore::take(Checkpoint snapshot) {
  std::int64_t visited = 0;
  for (level_t l : snapshot.level) {
    if (l != kUnreached) ++visited;
  }
  // Incremental on the wire: only entries visited since the previous
  // snapshot ship to the replica, plus the frontier list. The level-0
  // snapshot (just the source) is free by the same rule.
  const std::int64_t fresh = visited - prev_visited_;
  const std::uint64_t increment =
      static_cast<std::uint64_t>(fresh > 0 ? fresh : 0) *
          (sizeof(vid_t) + sizeof(level_t)) +
      snapshot.frontier.size() * sizeof(vid_t);
  prev_visited_ = visited;
  Entry entry;
  entry.checksum = checkpoint_checksum(snapshot);
  entry.snapshot = std::move(snapshot);
  history_.push_back(std::move(entry));
  ++taken_;
  bytes_ += increment;
  return increment;
}

const Checkpoint& CheckpointStore::latest() const noexcept {
  return history_.empty() ? empty_ : history_.back().snapshot;
}

const Checkpoint& CheckpointStore::newest_clean(vid_t source) const {
  for (auto it = history_.rbegin(); it != history_.rend(); ++it) {
    if (checkpoint_checksum(it->snapshot) != it->checksum) continue;
    if (checkpoint_defect(it->snapshot, source) != nullptr) continue;
    return it->snapshot;
  }
  return empty_;
}

void CheckpointStore::rollback_to(const Checkpoint& snapshot) {
  if (&snapshot == &empty_) {
    history_.clear();
  } else {
    while (!history_.empty() && &history_.back().snapshot != &snapshot) {
      history_.pop_back();
    }
  }
  // Reset the incremental baseline: the next take() re-ships everything
  // the discarded snapshots had already replicated.
  std::int64_t visited = 0;
  for (level_t l : snapshot.level) {
    if (l != kUnreached) ++visited;
  }
  prev_visited_ = visited;
}

bool CheckpointStore::corrupt_latest(std::uint64_t shape) {
  if (history_.empty()) return false;
  Checkpoint& c = history_.back().snapshot;
  // Pick a non-empty array, then an item and a bit, like the wire-payload
  // corrupter in comm.hpp — the stored checksum is deliberately left
  // stale, which is what distinguishes rot from a legitimate rewrite.
  struct Slot {
    void* data;
    std::size_t items;
    std::size_t item_bytes;
  };
  std::vector<Slot> slots;
  if (!c.parent.empty()) slots.push_back({c.parent.data(), c.parent.size(),
                                          sizeof(vid_t)});
  if (!c.level.empty()) slots.push_back({c.level.data(), c.level.size(),
                                         sizeof(level_t)});
  if (!c.frontier.empty()) slots.push_back({c.frontier.data(),
                                            c.frontier.size(),
                                            sizeof(vid_t)});
  if (slots.empty()) return false;
  const Slot& slot = slots[(shape >> 8) % slots.size()];
  auto* bytes = static_cast<unsigned char*>(slot.data);
  const std::size_t item = (shape >> 16) % slot.items;
  const std::size_t byte = (shape >> 40) % slot.item_bytes;
  bytes[item * slot.item_bytes + byte] ^=
      static_cast<unsigned char>(1u << ((shape >> 50) % 8));
  return true;
}

int CheckpointStore::scrub() {
  const auto first = std::remove_if(
      history_.begin(), history_.end(), [](const Entry& e) {
        return checkpoint_checksum(e.snapshot) != e.checksum;
      });
  const int rejected = static_cast<int>(history_.end() - first);
  history_.erase(first, history_.end());
  return rejected;
}

std::uint64_t restore_payload_bytes(const Checkpoint& snapshot) {
  std::int64_t visited = 0;
  for (level_t l : snapshot.level) {
    if (l != kUnreached) ++visited;
  }
  return static_cast<std::uint64_t>(visited > 0 ? visited : 0) *
             (sizeof(vid_t) + sizeof(level_t)) +
         snapshot.frontier.size() * sizeof(vid_t);
}

std::uint64_t shard_payload_bytes(std::uint64_t shard_vertices) noexcept {
  return shard_vertices * (sizeof(vid_t) + sizeof(level_t));
}

}  // namespace dbfs::recover
