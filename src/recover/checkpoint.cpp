#include "recover/checkpoint.hpp"

#include <stdexcept>
#include <utility>

namespace dbfs::recover {

const char* to_string(Policy policy) {
  switch (policy) {
    case Policy::kShrink:
      return "shrink";
    case Policy::kSpare:
      return "spare";
  }
  return "?";
}

Policy parse_policy(const std::string& name) {
  if (name == "shrink") return Policy::kShrink;
  if (name == "spare") return Policy::kSpare;
  throw std::invalid_argument("unknown recovery policy: " + name);
}

void CheckpointStore::arm(const RecoverOptions& options) {
  options_ = options;
  armed_ = true;
  latest_ = Checkpoint{};
  prev_visited_ = 0;
  taken_ = 0;
  bytes_ = 0;
}

std::uint64_t CheckpointStore::take(Checkpoint snapshot) {
  std::int64_t visited = 0;
  for (level_t l : snapshot.level) {
    if (l != kUnreached) ++visited;
  }
  // Incremental on the wire: only entries visited since the previous
  // snapshot ship to the replica, plus the frontier list. The level-0
  // snapshot (just the source) is free by the same rule.
  const std::int64_t fresh = visited - prev_visited_;
  const std::uint64_t increment =
      static_cast<std::uint64_t>(fresh > 0 ? fresh : 0) *
          (sizeof(vid_t) + sizeof(level_t)) +
      snapshot.frontier.size() * sizeof(vid_t);
  prev_visited_ = visited;
  latest_ = std::move(snapshot);
  ++taken_;
  bytes_ += increment;
  return increment;
}

std::uint64_t restore_payload_bytes(const Checkpoint& snapshot) {
  std::int64_t visited = 0;
  for (level_t l : snapshot.level) {
    if (l != kUnreached) ++visited;
  }
  return static_cast<std::uint64_t>(visited > 0 ? visited : 0) *
             (sizeof(vid_t) + sizeof(level_t)) +
         snapshot.frontier.size() * sizeof(vid_t);
}

std::uint64_t shard_payload_bytes(std::uint64_t shard_vertices) noexcept {
  return shard_vertices * (sizeof(vid_t) + sizeof(level_t));
}

}  // namespace dbfs::recover
