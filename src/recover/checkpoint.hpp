// Fail-stop recovery for the level-synchronous BFS drivers.
//
// Level-synchronous BFS has a natural consistency point — the level
// barrier — so cheap checkpoint/restart is a snapshot of (parents,
// levels, current frontier) taken after a level completes. The snapshot
// is modeled as an asynchronous replicated copy (diskless checkpointing
// to a partner rank's memory): it is metered in bytes and counted in the
// recover.* metrics, but overlapped with the traversal, so a run with
// checkpointing enabled and no failures keeps clocks — and the report —
// bit-identical to a run without the subsystem.
//
// When a collective raises simmpi::RankFailedError the driver recovers:
//   * Policy::kShrink — rebuild the communicator with p-1 ranks (2D
//     grids re-fold to the nearest valid pr x pc), re-partition every
//     vertex onto the survivors, restore the snapshot, and replay from
//     the last checkpointed level;
//   * Policy::kSpare — promote a hot spare into the dead rank's slot and
//     restore just that shard from the replica; the grid and the
//     partition are untouched.
// Either way the traversal's final parents/levels are bit-identical to a
// fault-free run: replayed levels recompute exactly the same frontier
// expansions (the per-level combine rules are partition-independent).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace dbfs::recover {

/// What to do about a dead rank. See the file comment.
enum class Policy { kShrink, kSpare };

const char* to_string(Policy policy);
/// Parse "shrink" | "spare"; throws std::invalid_argument otherwise.
Policy parse_policy(const std::string& name);

struct RecoverOptions {
  /// Snapshot cadence: checkpoint after every k completed levels. 0
  /// disables periodic snapshots — the implicit level-0 snapshot (just
  /// the source) is always kept while kills are scheduled, so 0 means
  /// "replay from the start" (the k = infinity point of the ablation).
  int checkpoint_every = 0;
  Policy policy = Policy::kShrink;
  /// Hot spares available to Policy::kSpare before recovery gives up and
  /// rethrows the failure.
  int spare_ranks = 1;
  /// State-audit cadence: run the ABFT auditor (src/bfs/audit.*) after
  /// every k completed levels, plus once after the traversal finishes. 0
  /// disables auditing — a run with audits off and no at-rest fault plan
  /// is bit-identical to a build without the subsystem.
  int audit_every = 0;
};

/// One consistent BFS snapshot, taken at a level barrier.
struct Checkpoint {
  int levels_completed = 0;  ///< levels fully applied to parent/level
  std::int64_t global_frontier = 0;
  std::vector<level_t> level;   ///< full distance array at the barrier
  std::vector<vid_t> parent;    ///< full parent array at the barrier
  std::vector<vid_t> frontier;  ///< sorted global ids of the live frontier
  /// Direction-optimization heuristic state at the barrier. The per-level
  /// direction decision is a pure function of (m_f, m_u, frontier size,
  /// current direction), so snapshotting these three scalars makes a
  /// replayed traversal take the same directions as the original — the
  /// replay-determinism contract the hybrid engine promises.
  eid_t dirop_frontier_edges = 0;    ///< m_f at the barrier
  eid_t dirop_unexplored_edges = 0;  ///< m_u at the barrier
  bool dirop_bottom_up = false;      ///< direction the last level ran in
};

/// Deterministic digest of a snapshot's full contents (header scalars,
/// arrays, frontier, dirop state). Stored next to each replica at take()
/// time and recomputed on restore, so an at-rest flip in the stored copy
/// is caught before it is ever replayed from.
std::uint64_t checkpoint_checksum(const Checkpoint& snapshot) noexcept;

/// Structural audit of a snapshot: returns the name of the first BFS
/// invariant it violates, or nullptr when clean. Catches snapshots that
/// were corrupted *before* they were stored (the checksum matches but the
/// contents were already wrong): source rooting, parent/level tree
/// consistency, and frontier/level agreement. The implicit empty
/// snapshot (replay from source) is always clean.
const char* checkpoint_defect(const Checkpoint& snapshot, vid_t source);

/// Holds the replicated snapshot history plus byte/count accounting.
/// Snapshots are incremental on the wire: a vertex's (parent, level)
/// entry is shipped to the replica only when it became visited since the
/// previous snapshot, plus the frontier list itself. Every stored
/// snapshot carries its content checksum so restores can verify it and
/// rollback can skip past corrupted replicas to the newest clean one.
class CheckpointStore {
 public:
  void arm(const RecoverOptions& options);

  bool armed() const noexcept { return armed_; }
  const RecoverOptions& options() const noexcept { return options_; }

  /// True when the cadence says to snapshot after `levels_completed`
  /// levels (cadence 0 never fires).
  bool due(int levels_completed) const noexcept {
    return armed_ && options_.checkpoint_every > 0 &&
           levels_completed % options_.checkpoint_every == 0;
  }

  /// Store a snapshot; returns the incremental replicated bytes.
  std::uint64_t take(Checkpoint snapshot);

  /// Newest stored snapshot, unverified. Empty (replay from source) until
  /// the first take().
  const Checkpoint& latest() const noexcept;

  /// Newest stored snapshot that passes both its stored checksum and the
  /// structural defect check. Falls back to the implicit empty snapshot
  /// (replay from source) when every stored replica is corrupt — recovery
  /// never dead-ends, it just replays more levels.
  const Checkpoint& newest_clean(vid_t source) const;

  /// Make `snapshot` (a reference returned by latest()/newest_clean())
  /// the newest entry again: discard everything stored after it and reset
  /// the incremental baseline so post-rollback takes re-ship what the
  /// discarded snapshots had. Passing the implicit empty snapshot clears
  /// the history.
  void rollback_to(const Checkpoint& snapshot);

  /// Fault-injection hook: flip one bit of the newest stored replica
  /// (shape picks the array, item, and bit) without touching its stored
  /// checksum — exactly what an at-rest memory error does. Returns false
  /// when nothing is stored to corrupt.
  bool corrupt_latest(std::uint64_t shape);

  /// Audit-time scrub: drop stored snapshots whose contents no longer
  /// match their stored checksum; returns how many were rejected
  /// (sdc.checkpoints_rejected).
  int scrub();

  std::int64_t checkpoints_taken() const noexcept { return taken_; }
  std::uint64_t bytes_shipped() const noexcept { return bytes_; }
  std::size_t stored() const noexcept { return history_.size(); }

 private:
  struct Entry {
    Checkpoint snapshot;
    std::uint64_t checksum = 0;
  };

  RecoverOptions options_;
  bool armed_ = false;
  std::vector<Entry> history_;  ///< oldest first; back() is the newest
  Checkpoint empty_;            ///< the implicit replay-from-source snapshot
  std::int64_t prev_visited_ = 0;
  std::int64_t taken_ = 0;
  std::uint64_t bytes_ = 0;
};

/// Bytes every survivor re-ingests for a full restore of `snapshot`: the
/// (parent, level) pair of each visited vertex plus the frontier list.
/// Shared by both distributions' shrink paths so the recover.* metrics
/// and the flight-recorder payloads price restores identically.
std::uint64_t restore_payload_bytes(const Checkpoint& snapshot);

/// Bytes a promoted spare re-ingests from the replica: one rank's shard
/// of the (parent, level) arrays.
std::uint64_t shard_payload_bytes(std::uint64_t shard_vertices) noexcept;

}  // namespace dbfs::recover
