// SparseVector is fully templated; this translation unit pins the
// instantiation used throughout the BFS code so its symbols are compiled
// once, and gives the target a source file.
#include "sparse/sparse_vector.hpp"

namespace dbfs::sparse {

template class SparseVector<vid_t>;
template class SparseVector<double>;

}  // namespace dbfs::sparse
