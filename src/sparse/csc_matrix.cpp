#include "sparse/csc_matrix.hpp"

#include <algorithm>
#include <stdexcept>

namespace dbfs::sparse {

CscMatrix CscMatrix::from_triples(vid_t nrows, vid_t ncols,
                                  std::vector<Triple> triples) {
  for (const Triple& t : triples) {
    if (t.row < 0 || t.row >= nrows || t.col < 0 || t.col >= ncols) {
      throw std::invalid_argument("CscMatrix: triple out of range");
    }
  }
  std::sort(triples.begin(), triples.end(),
            [](const Triple& a, const Triple& b) {
              return a.col != b.col ? a.col < b.col : a.row < b.row;
            });
  triples.erase(std::unique(triples.begin(), triples.end()), triples.end());

  CscMatrix m;
  m.nrows_ = nrows;
  m.ncols_ = ncols;
  m.col_ptr_.assign(static_cast<std::size_t>(ncols) + 1, 0);
  m.row_ids_.reserve(triples.size());
  for (const Triple& t : triples) {
    ++m.col_ptr_[t.col + 1];
    m.row_ids_.push_back(t.row);
  }
  for (vid_t c = 0; c < ncols; ++c) m.col_ptr_[c + 1] += m.col_ptr_[c];
  return m;
}

}  // namespace dbfs::sparse
