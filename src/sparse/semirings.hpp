// Named semirings for SpMSV. The paper casts one BFS level as a multiply
// on a (select, max) semiring (§3.2); other graph kernels arise from the
// same multiply under different semirings, which is the Combinatorial-
// BLAS viewpoint the paper builds on. These structs package the
// (multiply, combine) pair so call sites say what they mean instead of
// re-deriving lambdas.
//
//   auto y = spmsv<vid_t>(a, x, BfsParentSemiring{col_base}.multiply(),
//                         BfsParentSemiring::combine(), ...);
#pragma once

#include <algorithm>

#include "util/types.hpp"

namespace dbfs::sparse {

/// The paper's BFS semiring: the multiply "selects" the contributing
/// frontier vertex (the candidate parent = global column id), the
/// combine keeps the maximum — any single parent is valid, max makes the
/// result deterministic.
struct BfsParentSemiring {
  vid_t col_base = 0;  ///< global id of the block's first column

  auto multiply() const {
    const vid_t base = col_base;
    return [base](vid_t /*row*/, vid_t col, vid_t /*xval*/) {
      return base + col;
    };
  }

  static auto combine() {
    return [](vid_t a, vid_t b) { return std::max(a, b); };
  }
};

/// (+, pass-through): counts how many selected columns hit each row —
/// one step of sparse counting (e.g. common-neighbor counts, triangle
/// counting building block).
struct CountingSemiring {
  static auto multiply() {
    return [](vid_t /*row*/, vid_t /*col*/, vid_t xval) { return xval; };
  }
  static auto combine() {
    return [](vid_t a, vid_t b) { return a + b; };
  }
};

/// (min, pass-through) over values: propagates the minimum label of
/// contributing columns — one round of label-propagation connected
/// components in matrix form.
struct MinLabelSemiring {
  static auto multiply() {
    return [](vid_t /*row*/, vid_t /*col*/, vid_t xval) { return xval; };
  }
  static auto combine() {
    return [](vid_t a, vid_t b) { return std::min(a, b); };
  }
};

}  // namespace dbfs::sparse
