// Sparse accumulator (SPA), per Gilbert–Moler–Schreiber and paper §4.2:
// a dense value array + occupancy bitmask + list of touched indices.
//
// Accumulating nnz entries costs O(nnz) plus a final sort of the touched
// index list; clearing costs O(touched), so a persistent SPA amortizes its
// O(dim) allocation across BFS levels. The memory footprint is O(dim) —
// exactly the disadvantage the paper cites at high process counts, where
// the heap-based merge (merge.hpp) wins.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

#include "sparse/sparse_vector.hpp"
#include "util/types.hpp"

namespace dbfs::sparse {

template <typename T>
class Spa {
 public:
  Spa() = default;
  explicit Spa(vid_t dim)
      : dim_(dim),
        values_(static_cast<std::size_t>(dim)),
        occupied_((static_cast<std::size_t>(dim) + 63) / 64, 0) {}

  vid_t dim() const noexcept { return dim_; }

  /// Grow (never shrink) to at least `dim`; clears content.
  void resize(vid_t dim) {
    if (dim > dim_) {
      dim_ = dim;
      values_.resize(static_cast<std::size_t>(dim));
      occupied_.assign((static_cast<std::size_t>(dim) + 63) / 64, 0);
      touched_.clear();
    } else {
      clear();
    }
  }

  bool occupied(vid_t i) const noexcept {
    return (occupied_[static_cast<std::size_t>(i) >> 6] >>
            (static_cast<std::size_t>(i) & 63)) &
           1u;
  }

  /// Accumulate `value` at index i, combining with any existing value.
  template <typename Combine>
  void accumulate(vid_t i, T value, Combine combine) {
    assert(i >= 0 && i < dim_);
    if (occupied(i)) {
      values_[static_cast<std::size_t>(i)] =
          combine(values_[static_cast<std::size_t>(i)], value);
    } else {
      occupied_[static_cast<std::size_t>(i) >> 6] |=
          std::uint64_t{1} << (static_cast<std::size_t>(i) & 63);
      values_[static_cast<std::size_t>(i)] = value;
      touched_.push_back(i);
    }
  }

  vid_t touched_count() const noexcept {
    return static_cast<vid_t>(touched_.size());
  }

  /// Extract the accumulated entries as a sorted sparse vector and clear.
  /// The explicit sort is the cost the paper notes for the SPA approach.
  SparseVector<T> extract_and_clear() {
    std::sort(touched_.begin(), touched_.end());
    std::vector<SvEntry<T>> entries;
    entries.reserve(touched_.size());
    for (vid_t i : touched_) {
      entries.push_back(SvEntry<T>{i, values_[static_cast<std::size_t>(i)]});
      occupied_[static_cast<std::size_t>(i) >> 6] &=
          ~(std::uint64_t{1} << (static_cast<std::size_t>(i) & 63));
    }
    touched_.clear();
    return SparseVector<T>::from_sorted(dim_, std::move(entries));
  }

  /// Drop content without extracting (O(touched)).
  void clear() {
    for (vid_t i : touched_) {
      occupied_[static_cast<std::size_t>(i) >> 6] &=
          ~(std::uint64_t{1} << (static_cast<std::size_t>(i) & 63));
    }
    touched_.clear();
  }

  /// Approximate resident bytes; reported by the Fig 3 microbenchmark.
  std::size_t memory_bytes() const noexcept {
    return values_.capacity() * sizeof(T) +
           occupied_.capacity() * sizeof(std::uint64_t) +
           touched_.capacity() * sizeof(vid_t);
  }

 private:
  vid_t dim_ = 0;
  std::vector<T> values_;
  std::vector<std::uint64_t> occupied_;
  std::vector<vid_t> touched_;
};

}  // namespace dbfs::sparse
