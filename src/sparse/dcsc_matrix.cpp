#include "sparse/dcsc_matrix.hpp"

#include <algorithm>
#include <stdexcept>

namespace dbfs::sparse {

DcscMatrix DcscMatrix::from_triples(vid_t nrows, vid_t ncols,
                                    std::vector<Triple> triples) {
  for (const Triple& t : triples) {
    if (t.row < 0 || t.row >= nrows || t.col < 0 || t.col >= ncols) {
      throw std::invalid_argument("DcscMatrix: triple out of range");
    }
  }
  std::sort(triples.begin(), triples.end(),
            [](const Triple& a, const Triple& b) {
              return a.col != b.col ? a.col < b.col : a.row < b.row;
            });
  triples.erase(std::unique(triples.begin(), triples.end()), triples.end());

  DcscMatrix m;
  m.nrows_ = nrows;
  m.ncols_ = ncols;
  m.ir_.reserve(triples.size());
  for (const Triple& t : triples) {
    if (m.jc_.empty() || m.jc_.back() != t.col) {
      m.jc_.push_back(t.col);
      m.cp_.push_back(static_cast<eid_t>(m.ir_.size()));
    }
    m.ir_.push_back(t.row);
  }
  m.cp_.push_back(static_cast<eid_t>(m.ir_.size()));
  m.build_aux();
  return m;
}

void DcscMatrix::build_aux() {
  const vid_t nzc_count = nzc();
  if (nzc_count == 0 || ncols_ == 0) {
    aux_.assign(2, 0);
    bucket_width_ = std::max<vid_t>(ncols_, 1);
    return;
  }
  bucket_width_ = std::max<vid_t>(1, (ncols_ + nzc_count - 1) / nzc_count);
  const vid_t buckets = (ncols_ + bucket_width_ - 1) / bucket_width_;
  aux_.assign(static_cast<std::size_t>(buckets) + 1, nzc_count);
  // One sweep over jc fills the first-position-of-bucket table.
  for (vid_t k = nzc_count - 1; k >= 0; --k) {
    aux_[static_cast<std::size_t>(jc_[k] / bucket_width_)] = k;
  }
  // Back-fill empty buckets so aux[b] <= aux[b+1] everywhere.
  for (std::size_t b = aux_.size() - 1; b-- > 0;) {
    aux_[b] = std::min(aux_[b], aux_[b + 1]);
  }
}

std::span<const vid_t> DcscMatrix::column(vid_t col) const noexcept {
  if (col < 0 || col >= ncols_ || jc_.empty()) return {};
  const auto bucket = static_cast<std::size_t>(col / bucket_width_);
  const vid_t begin = aux_[bucket];
  const vid_t end = aux_[bucket + 1];
  // Expected O(1) probes: each bucket holds ~1 nonzero column on average.
  for (vid_t k = begin; k < end; ++k) {
    if (jc_[k] == col) return nonzero_column(k);
    if (jc_[k] > col) break;
  }
  return {};
}

std::vector<DcscMatrix> DcscMatrix::split_rowwise(int pieces) const {
  if (pieces < 1) throw std::invalid_argument("split_rowwise: pieces < 1");
  const vid_t rows_per = std::max<vid_t>(1, nrows_ / pieces);
  std::vector<std::vector<Triple>> buckets(static_cast<std::size_t>(pieces));
  for (vid_t k = 0; k < nzc(); ++k) {
    const vid_t col = jc_[k];
    for (vid_t row : nonzero_column(k)) {
      const auto piece = static_cast<std::size_t>(
          std::min<vid_t>(row / rows_per, pieces - 1));
      const vid_t base = static_cast<vid_t>(piece) * rows_per;
      buckets[piece].push_back(Triple{row - base, col});
    }
  }
  std::vector<DcscMatrix> out;
  out.reserve(static_cast<std::size_t>(pieces));
  for (int piece = 0; piece < pieces; ++piece) {
    const vid_t base = static_cast<vid_t>(piece) * rows_per;
    const vid_t piece_rows =
        (piece == pieces - 1) ? nrows_ - base : rows_per;
    out.push_back(from_triples(std::max<vid_t>(piece_rows, 0), ncols_,
                               std::move(buckets[static_cast<std::size_t>(piece)])));
  }
  return out;
}

std::size_t DcscMatrix::memory_bytes() const noexcept {
  return jc_.capacity() * sizeof(vid_t) + cp_.capacity() * sizeof(eid_t) +
         ir_.capacity() * sizeof(vid_t) + aux_.capacity() * sizeof(vid_t);
}

}  // namespace dbfs::sparse
