#include "sparse/spmsv.hpp"

namespace dbfs::sparse {

const char* to_string(SpmsvBackend backend) {
  switch (backend) {
    case SpmsvBackend::kAuto:
      return "auto";
    case SpmsvBackend::kSpa:
      return "spa";
    case SpmsvBackend::kHeap:
      return "heap";
  }
  return "?";
}

SpmsvBackend choose_backend(eid_t selected_nnz, vid_t dim) {
  // The SPA pays O(dim)-footprint cache traffic plus a final sort; the
  // heap pays a log factor on flops. When the touched volume is a small
  // fraction of the output dimension the dense accumulator's working set
  // is mostly wasted, so switch to the heap. The 1/32 density threshold
  // places the crossover in the same regime as the paper's ~10K-core
  // transition for weak-scaled R-MAT inputs (see bench/fig3_spa_vs_heap).
  if (dim <= 0) return SpmsvBackend::kHeap;
  return (selected_nnz * 32 < dim) ? SpmsvBackend::kHeap : SpmsvBackend::kSpa;
}

}  // namespace dbfs::sparse
