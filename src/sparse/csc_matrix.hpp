// Compressed sparse columns over a boolean (pattern-only) matrix.
//
// Used as the straightforward local-matrix representation and as the
// reference against which the hypersparse DCSC structure is tested. For
// a p-way 2D decomposition CSC costs O(ncols + nnz) per block — the
// O(n·sqrt(p)) aggregate overhead the paper rejects in §4.1 — so the 2D
// BFS itself uses DcscMatrix.
#pragma once

#include <span>
#include <vector>

#include "util/types.hpp"

namespace dbfs::sparse {

/// A (row, col) coordinate; values are implicitly boolean.
struct Triple {
  vid_t row;
  vid_t col;

  friend bool operator==(const Triple&, const Triple&) = default;
  friend auto operator<=>(const Triple&, const Triple&) = default;
};

class CscMatrix {
 public:
  CscMatrix() = default;

  /// Build from coordinates (duplicates collapsed, rows sorted per column).
  static CscMatrix from_triples(vid_t nrows, vid_t ncols,
                                std::vector<Triple> triples);

  vid_t nrows() const noexcept { return nrows_; }
  vid_t ncols() const noexcept { return ncols_; }
  eid_t nnz() const noexcept { return static_cast<eid_t>(row_ids_.size()); }

  /// Sorted row ids of column c (empty span if none).
  std::span<const vid_t> column(vid_t c) const noexcept {
    return {row_ids_.data() + col_ptr_[c],
            static_cast<std::size_t>(col_ptr_[c + 1] - col_ptr_[c])};
  }

  const std::vector<eid_t>& col_ptr() const noexcept { return col_ptr_; }
  const std::vector<vid_t>& row_ids() const noexcept { return row_ids_; }

 private:
  vid_t nrows_ = 0;
  vid_t ncols_ = 0;
  std::vector<eid_t> col_ptr_;  // size ncols+1
  std::vector<vid_t> row_ids_;  // size nnz, sorted within each column
};

}  // namespace dbfs::sparse
