// Sorted sparse vector: the frontier representation of the 2D algorithm
// (paper §4.1: "a sorted sparse vector in the 2D implementation").
//
// Entries are (index, value) pairs kept sorted by index with unique
// indices. For BFS the value is the parent payload carried by the
// (select, max) semiring; other semirings are exercised in tests.
#pragma once

#include <algorithm>
#include <cassert>
#include <vector>

#include "util/types.hpp"

namespace dbfs::sparse {

template <typename T>
struct SvEntry {
  vid_t index;
  T value;

  friend bool operator==(const SvEntry&, const SvEntry&) = default;
};

template <typename T>
class SparseVector {
 public:
  SparseVector() = default;
  explicit SparseVector(vid_t dim) : dim_(dim) {}

  /// Build from entries that are already sorted by index and unique
  /// (asserted in debug builds).
  static SparseVector from_sorted(vid_t dim, std::vector<SvEntry<T>> entries) {
    SparseVector v{dim};
    v.entries_ = std::move(entries);
    assert(v.invariants_hold());
    return v;
  }

  /// Build from arbitrary entries; duplicates combined with `combine`.
  template <typename Combine>
  static SparseVector from_unsorted(vid_t dim,
                                    std::vector<SvEntry<T>> entries,
                                    Combine combine) {
    std::sort(entries.begin(), entries.end(),
              [](const SvEntry<T>& a, const SvEntry<T>& b) {
                return a.index < b.index;
              });
    std::vector<SvEntry<T>> out;
    out.reserve(entries.size());
    for (const auto& e : entries) {
      if (!out.empty() && out.back().index == e.index) {
        out.back().value = combine(out.back().value, e.value);
      } else {
        out.push_back(e);
      }
    }
    SparseVector v{dim};
    v.entries_ = std::move(out);
    return v;
  }

  vid_t dim() const noexcept { return dim_; }
  vid_t nnz() const noexcept { return static_cast<vid_t>(entries_.size()); }
  bool empty() const noexcept { return entries_.empty(); }
  void clear() noexcept { entries_.clear(); }

  void push_back(vid_t index, T value) {
    assert(entries_.empty() || entries_.back().index < index);
    entries_.push_back(SvEntry<T>{index, value});
  }

  const std::vector<SvEntry<T>>& entries() const noexcept { return entries_; }
  std::vector<SvEntry<T>>& entries() noexcept { return entries_; }

  auto begin() const noexcept { return entries_.begin(); }
  auto end() const noexcept { return entries_.end(); }

  /// Value lookup by binary search; nullptr when absent.
  const T* find(vid_t index) const noexcept {
    auto it = std::lower_bound(
        entries_.begin(), entries_.end(), index,
        [](const SvEntry<T>& e, vid_t i) { return e.index < i; });
    if (it == entries_.end() || it->index != index) return nullptr;
    return &it->value;
  }

  /// Sorted + unique + in-range; used by tests and debug assertions.
  bool invariants_hold() const noexcept {
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].index < 0 || entries_[i].index >= dim_) return false;
      if (i > 0 && entries_[i - 1].index >= entries_[i].index) return false;
    }
    return true;
  }

 private:
  vid_t dim_ = 0;
  std::vector<SvEntry<T>> entries_;
};

/// Remove from `v` every entry whose index is flagged in `mask` (dense,
/// size v.dim()). This is the "t ⊙ complement(pi)" step of Algorithm 3.
template <typename T, typename Pred>
void filter_inplace(SparseVector<T>& v, Pred keep) {
  auto& e = v.entries();
  e.erase(std::remove_if(
              e.begin(), e.end(),
              [&](const SvEntry<T>& entry) { return !keep(entry.index); }),
          e.end());
}

}  // namespace dbfs::sparse
