// Doubly-compressed sparse columns (DCSC), Buluç & Gilbert's hypersparse
// format (paper §4.1, Fig 2): storage is O(nnz + nzc), independent of the
// matrix dimension — exactly what a 2D-partitioned sub-matrix needs, since
// after a p-way 2D split each block has far fewer nonzero columns than
// total columns.
//
// Arrays:
//   jc[0..nzc)   — ids of columns that have at least one nonzero, sorted
//   cp[0..nzc]   — column pointers into ir (parallel to jc)
//   ir[0..nnz)   — row ids, sorted within each column
//   aux          — chunked accelerator over jc giving near-O(1) column
//                  lookup during SpMSV (the "fast indexing support" §4.1)
#pragma once

#include <span>
#include <vector>

#include "sparse/csc_matrix.hpp"
#include "util/types.hpp"

namespace dbfs::sparse {

class DcscMatrix {
 public:
  DcscMatrix() = default;

  static DcscMatrix from_triples(vid_t nrows, vid_t ncols,
                                 std::vector<Triple> triples);

  vid_t nrows() const noexcept { return nrows_; }
  vid_t ncols() const noexcept { return ncols_; }
  eid_t nnz() const noexcept { return static_cast<eid_t>(ir_.size()); }
  /// Number of columns holding at least one nonzero.
  vid_t nzc() const noexcept { return static_cast<vid_t>(jc_.size()); }

  /// Sorted row ids of column `col`; empty span when the column is empty.
  /// Uses the aux accelerator: expected O(nnz/nzc)-bounded probe.
  std::span<const vid_t> column(vid_t col) const noexcept;

  /// k-th nonzero column: its id and row span (for full-matrix scans).
  vid_t nonzero_column_id(vid_t k) const noexcept { return jc_[k]; }
  std::span<const vid_t> nonzero_column(vid_t k) const noexcept {
    return {ir_.data() + cp_[k], static_cast<std::size_t>(cp_[k + 1] - cp_[k])};
  }

  /// Split row-wise into `pieces` DCSC blocks covering contiguous row
  /// ranges (paper Fig 2: per-thread sub-matrices for the hybrid code).
  /// Row ids in each piece are re-based to the piece's range.
  std::vector<DcscMatrix> split_rowwise(int pieces) const;

  /// Actual resident bytes — compared against CSC in tests to verify the
  /// O(nnz + nzc) claim.
  std::size_t memory_bytes() const noexcept;

  const std::vector<vid_t>& jc() const noexcept { return jc_; }
  const std::vector<eid_t>& cp() const noexcept { return cp_; }
  const std::vector<vid_t>& ir() const noexcept { return ir_; }

 private:
  void build_aux();

  vid_t nrows_ = 0;
  vid_t ncols_ = 0;
  std::vector<vid_t> jc_;
  std::vector<eid_t> cp_;
  std::vector<vid_t> ir_;
  // aux[b] = first jc position whose column id lands at or beyond bucket b;
  // bucket width = ceil(ncols / nzc), so expected one jc entry per bucket.
  std::vector<vid_t> aux_;
  vid_t bucket_width_ = 1;
};

}  // namespace dbfs::sparse
