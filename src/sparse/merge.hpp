// Heap-based unbalanced multiway merge: the memory-frugal alternative to
// the SPA for forming the column union in SpMSV (paper §4.2).
//
// The heap holds one cursor per selected matrix column; since columns are
// sorted by row id, popping in order yields the merged output already
// sorted, with duplicates combined on the fly. Memory is O(k) for k
// selected columns — this is why the paper's polyalgorithm switches to
// the heap at high process counts, where the SPA's O(dim) dense arrays
// dominate the per-core footprint.
//
// A 4-ary heap is used instead of binary: shallower trees mean fewer
// cache-missing levels per sift, the "cache-efficient heap" of §4.2.
#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "sparse/sparse_vector.hpp"
#include "util/types.hpp"

namespace dbfs::sparse {

/// Min-heap with configurable arity over POD elements.
/// Comparator: strict-weak "less" — the minimum is at the top.
template <typename T, typename Less, int Arity = 4>
class KaryHeap {
  static_assert(Arity >= 2);

 public:
  explicit KaryHeap(Less less = Less{}) : less_(less) {}

  bool empty() const noexcept { return items_.empty(); }
  std::size_t size() const noexcept { return items_.size(); }
  const T& top() const noexcept { return items_.front(); }
  void reserve(std::size_t n) { items_.reserve(n); }

  void push(T item) {
    items_.push_back(item);
    sift_up(items_.size() - 1);
  }

  void pop() {
    assert(!items_.empty());
    items_.front() = items_.back();
    items_.pop_back();
    if (!items_.empty()) sift_down(0);
  }

  /// Replace the top element and restore heap order: one sift instead of
  /// a pop+push pair — the hot operation in multiway merge.
  void replace_top(T item) {
    assert(!items_.empty());
    items_.front() = item;
    sift_down(0);
  }

 private:
  void sift_up(std::size_t i) {
    while (i > 0) {
      const std::size_t parent = (i - 1) / Arity;
      if (!less_(items_[i], items_[parent])) break;
      std::swap(items_[i], items_[parent]);
      i = parent;
    }
  }

  void sift_down(std::size_t i) {
    const std::size_t n = items_.size();
    while (true) {
      const std::size_t first_child = i * Arity + 1;
      if (first_child >= n) break;
      std::size_t best = first_child;
      const std::size_t last_child =
          std::min(first_child + Arity, n);
      for (std::size_t c = first_child + 1; c < last_child; ++c) {
        if (less_(items_[c], items_[best])) best = c;
      }
      if (!less_(items_[best], items_[i])) break;
      std::swap(items_[i], items_[best]);
      i = best;
    }
  }

  Less less_;
  std::vector<T> items_;
};

/// Merge k sorted index runs into a sorted sparse vector.
///   value_of(run, index) produces the payload for an occurrence;
///   combine(a, b) merges payloads of equal indices.
template <typename T, typename ValueOf, typename Combine>
SparseVector<T> multiway_merge(vid_t dim,
                               std::span<const std::span<const vid_t>> runs,
                               ValueOf value_of, Combine combine) {
  struct Cursor {
    vid_t key;
    std::uint32_t run;
    std::uint32_t pos;
  };
  struct Less {
    bool operator()(const Cursor& a, const Cursor& b) const noexcept {
      return a.key < b.key;
    }
  };

  KaryHeap<Cursor, Less> heap;
  heap.reserve(runs.size());
  for (std::uint32_t r = 0; r < runs.size(); ++r) {
    if (!runs[r].empty()) {
      heap.push(Cursor{runs[r][0], r, 0});
    }
  }

  SparseVector<T> out{dim};
  while (!heap.empty()) {
    const Cursor c = heap.top();
    T value = value_of(c.run, c.key);
    // Advance this run's cursor before draining equal keys from others.
    if (c.pos + 1 < runs[c.run].size()) {
      heap.replace_top(Cursor{runs[c.run][c.pos + 1], c.run, c.pos + 1});
    } else {
      heap.pop();
    }
    while (!heap.empty() && heap.top().key == c.key) {
      const Cursor dup = heap.top();
      value = combine(value, value_of(dup.run, dup.key));
      if (dup.pos + 1 < runs[dup.run].size()) {
        heap.replace_top(
            Cursor{runs[dup.run][dup.pos + 1], dup.run, dup.pos + 1});
      } else {
        heap.pop();
      }
    }
    out.push_back(c.key, value);
  }
  return out;
}

}  // namespace dbfs::sparse
