// multiway_merge and KaryHeap are header-only templates; this file exists
// to give the sparse target a home for any future non-template helpers.
#include "sparse/merge.hpp"
