// Sparse matrix – sparse vector multiplication (SpMSV) over a generic
// semiring: the computational core of one 2D BFS level (paper §3.2):
//
//     y = A ⊗ x,  y(r) = combine over { multiply(r, c, x(c)) : A(r,c)≠0,
//                                       c ∈ indices(x) }
//
// Two union-forming back ends, per §4.2:
//   * SPA  — dense accumulator; fast at low concurrency, O(dim) memory.
//   * Heap — multiway merge of the selected columns; O(nnz(x)) memory,
//            an extra log factor of compute.
// The polyalgorithm (kAuto) picks the heap when the selected columns are
// few relative to the output dimension — the regime corresponding to the
// paper's >10K-core crossover (Fig 3).
#pragma once

#include <span>

#include "sparse/dcsc_matrix.hpp"
#include "sparse/merge.hpp"
#include "sparse/spa.hpp"
#include "sparse/sparse_vector.hpp"
#include "util/types.hpp"

namespace dbfs::sparse {

enum class SpmsvBackend { kAuto, kSpa, kHeap };

const char* to_string(SpmsvBackend backend);

struct SpmsvStats {
  eid_t flops = 0;          ///< nonzeros touched (multiply invocations)
  vid_t output_nnz = 0;
  SpmsvBackend used = SpmsvBackend::kAuto;  ///< back end actually run
};

/// Polyalgorithm decision. `selected_nnz` is the total nonzeros in the
/// columns indexed by x (= flops); `dim` is the output dimension.
SpmsvBackend choose_backend(eid_t selected_nnz, vid_t dim);

/// Generic SpMSV.
///   Multiply: T mul(vid_t row, vid_t col, const T& xval)
///   Combine:  T comb(T a, T b)  (associative, commutative)
/// `workspace` is required for the SPA back end (and for kAuto); it is
/// resized if smaller than a.nrows().
template <typename T, typename Multiply, typename Combine>
SparseVector<T> spmsv(const DcscMatrix& a, const SparseVector<T>& x,
                      Multiply mul, Combine comb,
                      SpmsvBackend backend = SpmsvBackend::kAuto,
                      Spa<T>* workspace = nullptr,
                      SpmsvStats* stats = nullptr) {
  // Gather the selected columns once; both back ends consume this view.
  std::vector<std::span<const vid_t>> columns;
  std::vector<const SvEntry<T>*> col_entries;
  columns.reserve(static_cast<std::size_t>(x.nnz()));
  col_entries.reserve(static_cast<std::size_t>(x.nnz()));
  eid_t flops = 0;
  for (const SvEntry<T>& e : x.entries()) {
    const auto rows = a.column(e.index);
    if (rows.empty()) continue;
    columns.push_back(rows);
    col_entries.push_back(&e);
    flops += static_cast<eid_t>(rows.size());
  }

  SpmsvBackend used = backend;
  if (used == SpmsvBackend::kAuto) {
    used = choose_backend(flops, a.nrows());
  }
  if (used == SpmsvBackend::kSpa && workspace == nullptr) {
    used = SpmsvBackend::kHeap;  // no dense workspace available
  }

  SparseVector<T> result{a.nrows()};
  if (used == SpmsvBackend::kSpa) {
    if (workspace->dim() < a.nrows()) workspace->resize(a.nrows());
    for (std::size_t k = 0; k < columns.size(); ++k) {
      const SvEntry<T>& xe = *col_entries[k];
      for (vid_t row : columns[k]) {
        workspace->accumulate(row, mul(row, xe.index, xe.value), comb);
      }
    }
    result = workspace->extract_and_clear();
    // extract gives dim == workspace dim; re-wrap with the matrix's rows.
    result = SparseVector<T>::from_sorted(
        a.nrows(), std::move(result.entries()));
  } else {
    result = multiway_merge<T>(
        a.nrows(), columns,
        [&](std::uint32_t run, vid_t row) {
          const SvEntry<T>& xe = *col_entries[run];
          return mul(row, xe.index, xe.value);
        },
        comb);
  }

  if (stats != nullptr) {
    stats->flops = flops;
    stats->output_nnz = result.nnz();
    stats->used = used;
  }
  return result;
}

/// Transpose product y = Aᵀ ⊗ x over the same semiring, *without* a
/// transposed copy of A: DCSC is column-major, so the only way to apply
/// Aᵀ is to scan every stored column and test each entry's row id against
/// x's support. Work is O(nnz(A) + nzc(A)) per call regardless of nnz(x)
/// — the computational price of the paper's §7 triangular-storage space
/// optimization (quantified in bench/ablation_triangular).
///
///   InSupport: const T* lookup(vid_t row)  — null when x has no entry
///   Multiply:  T mul(vid_t out_col, vid_t in_row, const T& xval)
///   Combine:   T comb(T a, T b)
template <typename T, typename InSupport, typename Multiply,
          typename Combine>
SparseVector<T> spmsv_transpose(const DcscMatrix& a, InSupport lookup,
                                Multiply mul, Combine comb,
                                SpmsvStats* stats = nullptr) {
  SparseVector<T> out{a.ncols()};
  eid_t scanned = 0;
  for (vid_t k = 0; k < a.nzc(); ++k) {
    const vid_t col = a.nonzero_column_id(k);
    bool have = false;
    T acc{};
    for (vid_t row : a.nonzero_column(k)) {
      ++scanned;
      if (const T* xval = lookup(row)) {
        const T candidate = mul(col, row, *xval);
        acc = have ? comb(acc, candidate) : candidate;
        have = true;
      }
    }
    if (have) out.push_back(col, acc);
  }
  if (stats != nullptr) {
    stats->flops = scanned;
    stats->output_nnz = out.nnz();
    stats->used = SpmsvBackend::kHeap;  // scan-based; no SPA involved
  }
  return out;
}

/// Bottom-up BFS step as a transposed SpMSV (Buluç et al. 2017, "the
/// direction-optimizing distributed formulation"): for every stored
/// column the caller still *wants* (an unvisited vertex), scan its
/// entries until one row lies in the input's support, emit that row's
/// value as the column's result, and stop — Beamer's early exit. The
/// scan runs over the stored row order *backwards* (row ids descending),
/// so the first hit is the maximum-row-id hit: the per-block result is
/// the max over the block's rows, making the combined cross-block result
/// (max again) independent of how the matrix is partitioned — the same
/// partition-independence the top-down (select, max) combine has, which
/// keeps parents bit-identical across grid shapes and shrink recoveries.
///
/// stats->flops counts entries actually probed (early exit included):
/// the bottom-up edge-examination count the direction heuristic trades
/// against the top-down flops.
///
///   ColumnSelect: bool want(vid_t col)   — false once the vertex is done
///   InSupport:    const T* lookup(vid_t row) — null when x has no entry
///   Multiply:     T mul(vid_t out_col, vid_t in_row, const T& xval)
template <typename T, typename ColumnSelect, typename InSupport,
          typename Multiply>
SparseVector<T> spmsv_bottom_up(const DcscMatrix& a, ColumnSelect want,
                                InSupport lookup, Multiply mul,
                                SpmsvStats* stats = nullptr) {
  SparseVector<T> out{a.ncols()};
  eid_t scanned = 0;
  for (vid_t k = 0; k < a.nzc(); ++k) {
    const vid_t col = a.nonzero_column_id(k);
    if (!want(col)) continue;
    const auto rows = a.nonzero_column(k);
    for (std::size_t idx = rows.size(); idx > 0; --idx) {
      const vid_t row = rows[idx - 1];
      ++scanned;
      if (const T* xval = lookup(row)) {
        out.push_back(col, mul(col, row, *xval));
        break;  // first (= max-row) hit wins; the rest is never examined
      }
    }
  }
  if (stats != nullptr) {
    stats->flops = scanned;
    stats->output_nnz = out.nnz();
    stats->used = SpmsvBackend::kHeap;  // scan-based; no SPA involved
  }
  return out;
}

}  // namespace dbfs::sparse
