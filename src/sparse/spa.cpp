#include "sparse/spa.hpp"

namespace dbfs::sparse {

template class Spa<vid_t>;
template class Spa<double>;

}  // namespace dbfs::sparse
